#include <cmath>

#include "gtest/gtest.h"
#include "stats/gmm.h"
#include "util/rng.h"

namespace p3gm {
namespace stats {
namespace {

constexpr double kLog2Pi = 1.8378770664093454836;

// Two well-separated spherical blobs in 2-D.
linalg::Matrix TwoBlobs(std::size_t n_per, util::Rng* rng) {
  linalg::Matrix x(2 * n_per, 2);
  for (std::size_t i = 0; i < n_per; ++i) {
    x(i, 0) = rng->Normal(-4.0, 0.5);
    x(i, 1) = rng->Normal(0.0, 0.5);
    x(n_per + i, 0) = rng->Normal(4.0, 0.5);
    x(n_per + i, 1) = rng->Normal(0.0, 0.5);
  }
  return x;
}

TEST(GaussianMixtureTest, CreateValidatesShapes) {
  EXPECT_FALSE(GaussianMixture::Create({}, linalg::Matrix(), linalg::Matrix())
                   .ok());
  EXPECT_FALSE(GaussianMixture::Create({1.0}, linalg::Matrix(2, 3),
                                       linalg::Matrix(1, 3))
                   .ok());
  EXPECT_FALSE(GaussianMixture::Create({-1.0}, linalg::Matrix(1, 2),
                                       linalg::Matrix(1, 2, 1.0))
                   .ok());
  EXPECT_FALSE(GaussianMixture::Create({1.0}, linalg::Matrix(1, 2),
                                       linalg::Matrix(1, 2, 0.0))
                   .ok());
}

TEST(GaussianMixtureTest, WeightsAreNormalized) {
  auto g = GaussianMixture::Create({2.0, 6.0}, linalg::Matrix(2, 1),
                                   linalg::Matrix(2, 1, 1.0));
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->weights()[0], 0.25, 1e-12);
  EXPECT_NEAR(g->weights()[1], 0.75, 1e-12);
}

TEST(GaussianMixtureTest, SingleComponentLogPdfMatchesGaussian) {
  auto g = GaussianMixture::Create({1.0}, linalg::Matrix(1, 1),
                                   linalg::Matrix(1, 1, 1.0));
  ASSERT_TRUE(g.ok());
  // log N(0; 0, 1) = -0.5 log(2 pi).
  EXPECT_NEAR(g->LogPdf({0.0}), -0.5 * kLog2Pi, 1e-12);
  EXPECT_NEAR(g->LogPdf({1.0}), -0.5 * kLog2Pi - 0.5, 1e-12);
}

TEST(GaussianMixtureTest, ResponsibilitiesSumToOne) {
  linalg::Matrix means = {{-1.0, 0.0}, {1.0, 0.0}};
  auto g = GaussianMixture::Create({0.5, 0.5}, means,
                                   linalg::Matrix(2, 2, 1.0));
  ASSERT_TRUE(g.ok());
  auto r = g->Responsibilities({0.3, -0.2});
  EXPECT_NEAR(r[0] + r[1], 1.0, 1e-12);
  // Nearer to component 1.
  EXPECT_GT(r[1], r[0]);
}

TEST(GaussianMixtureTest, SampleMomentsMatchSingleComponent) {
  linalg::Matrix means = {{2.0}};
  linalg::Matrix vars = {{4.0}};
  auto g = GaussianMixture::Create({1.0}, means, vars);
  util::Rng rng(5);
  double s = 0.0, s2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = g->Sample(&rng)[0];
    s += x;
    s2 += (x - 2.0) * (x - 2.0);
  }
  EXPECT_NEAR(s / n, 2.0, 0.05);
  EXPECT_NEAR(s2 / n, 4.0, 0.1);
}

TEST(GaussianMixtureTest, SampleMixingRatio) {
  linalg::Matrix means = {{-10.0}, {10.0}};
  auto g = GaussianMixture::Create({0.2, 0.8}, means,
                                   linalg::Matrix(2, 1, 0.1));
  util::Rng rng(7);
  int right = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) right += (g->Sample(&rng)[0] > 0);
  EXPECT_NEAR(right / static_cast<double>(n), 0.8, 0.02);
}

TEST(FitGmmTest, ValidatesInput) {
  EXPECT_FALSE(FitGmm(linalg::Matrix(), {}).ok());
  EmOptions opt;
  opt.num_components = 5;
  EXPECT_FALSE(FitGmm(linalg::Matrix(3, 2, 1.0), opt).ok());
}

TEST(FitGmmTest, RecoversTwoBlobs) {
  util::Rng rng(11);
  linalg::Matrix x = TwoBlobs(300, &rng);
  EmOptions opt;
  opt.num_components = 2;
  opt.max_iters = 50;
  auto g = FitGmm(x, opt);
  ASSERT_TRUE(g.ok());
  // One mean near -4, the other near +4 on the first axis.
  const double m0 = g->means()(0, 0), m1 = g->means()(1, 0);
  EXPECT_NEAR(std::min(m0, m1), -4.0, 0.3);
  EXPECT_NEAR(std::max(m0, m1), 4.0, 0.3);
  EXPECT_NEAR(g->weights()[0], 0.5, 0.05);
}

TEST(FitGmmTest, LikelihoodImprovesOverSingleComponentOnBimodalData) {
  util::Rng rng(13);
  linalg::Matrix x = TwoBlobs(200, &rng);
  EmOptions one;
  one.num_components = 1;
  EmOptions two;
  two.num_components = 2;
  auto g1 = FitGmm(x, one);
  auto g2 = FitGmm(x, two);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_GT(g2->MeanLogLikelihood(x), g1->MeanLogLikelihood(x) + 0.5);
}

TEST(FitGmmTest, SingleComponentMatchesSampleMoments) {
  util::Rng rng(17);
  linalg::Matrix x(500, 2);
  for (std::size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.Normal(1.0, 2.0);
    x(i, 1) = rng.Normal(-1.0, 0.5);
  }
  EmOptions opt;
  opt.num_components = 1;
  auto g = FitGmm(x, opt);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->means()(0, 0), 1.0, 0.2);
  EXPECT_NEAR(g->means()(0, 1), -1.0, 0.1);
  EXPECT_NEAR(g->variances()(0, 0), 4.0, 0.6);
  EXPECT_NEAR(g->variances()(0, 1), 0.25, 0.05);
}

TEST(FitGmmTest, DeterministicGivenSeed) {
  util::Rng rng(19);
  linalg::Matrix x = TwoBlobs(100, &rng);
  EmOptions opt;
  opt.num_components = 2;
  opt.seed = 42;
  auto a = FitGmm(x, opt);
  auto b = FitGmm(x, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->means(), b->means());
}

// ----------------------------------------------------------- KL helpers

TEST(KlTest, DiagGaussianKlZeroForIdentical) {
  EXPECT_NEAR(DiagGaussianKl({1, 2}, {0.5, 2.0}, {1, 2}, {0.5, 2.0}), 0.0,
              1e-12);
}

TEST(KlTest, DiagGaussianKlKnownValue) {
  // KL(N(0,1) || N(1,1)) = 0.5.
  EXPECT_NEAR(DiagGaussianKl({0}, {1}, {1}, {1}), 0.5, 1e-12);
  // KL(N(0,1) || N(0,4)) = 0.5 (ln 4 + 1/4 - 1).
  EXPECT_NEAR(DiagGaussianKl({0}, {1}, {0}, {4}),
              0.5 * (std::log(4.0) + 0.25 - 1.0), 1e-12);
}

TEST(KlTest, DiagGaussianKlNonNegative) {
  util::Rng rng(23);
  for (int t = 0; t < 200; ++t) {
    std::vector<double> ma(3), va(3), mb(3), vb(3);
    for (int j = 0; j < 3; ++j) {
      ma[j] = rng.Normal();
      mb[j] = rng.Normal();
      va[j] = 0.1 + rng.Uniform() * 3;
      vb[j] = 0.1 + rng.Uniform() * 3;
    }
    EXPECT_GE(DiagGaussianKl(ma, va, mb, vb), -1e-12);
  }
}

TEST(KlTest, GaussianToMixtureKlReducesToSingleComponent) {
  linalg::Matrix means = {{1.0, -1.0}};
  linalg::Matrix vars = {{2.0, 0.5}};
  auto g = GaussianMixture::Create({1.0}, means, vars);
  ASSERT_TRUE(g.ok());
  const std::vector<double> mu = {0.0, 0.0};
  const std::vector<double> var = {1.0, 1.0};
  EXPECT_NEAR(GaussianToMixtureKl(mu, var, *g),
              DiagGaussianKl(mu, var, {1.0, -1.0}, {2.0, 0.5}), 1e-9);
}

TEST(KlTest, GaussianToMixtureKlSmallNearComponent) {
  linalg::Matrix means = {{-5.0}, {5.0}};
  auto g = GaussianMixture::Create({0.5, 0.5}, means,
                                   linalg::Matrix(2, 1, 1.0));
  ASSERT_TRUE(g.ok());
  // Sitting exactly on a component: approximately -log(0.5) = 0.69 (the
  // mixture weight penalty), far smaller than sitting between them.
  const double near = GaussianToMixtureKl({5.0}, {1.0}, *g);
  const double mid = GaussianToMixtureKl({0.0}, {1.0}, *g);
  EXPECT_LT(near, mid);
  EXPECT_NEAR(near, std::log(2.0), 0.01);
}

}  // namespace
}  // namespace stats
}  // namespace p3gm
