#include <cmath>
#include <cstdlib>

#include "gtest/gtest.h"
#include "audit/epsilon_audit.h"
#include "audit/fault_injection.h"
#include "util/rng.h"

namespace p3gm {
namespace audit {
namespace {

bool RunSlowAudits() {
  const char* env = std::getenv("P3GM_RUN_SLOW_AUDITS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Negative controls inject faults, so they can only run when the hooks
// are compiled in (-DP3GM_FAULT_INJECTION=ON, the default).
#define P3GM_REQUIRE_FAULT_INJECTION()                           \
  do {                                                           \
    if (!kFaultInjectionCompiled) {                              \
      GTEST_SKIP() << "built with -DP3GM_FAULT_INJECTION=OFF";   \
    }                                                            \
  } while (0)

// ------------------------------------------------------- core auditor

TEST(EpsilonAuditCoreTest, PerfectDistinguisherCertifiesLargeEpsilon) {
  // Scores separate completely: the only limit is the Clopper-Pearson
  // slack of the trial count.
  const auto score = [](bool with_canary, std::uint64_t trial) {
    util::Rng rng = util::Rng::StreamAt(1, trial * 2 + (with_canary ? 1 : 0));
    return (with_canary ? 100.0 : 0.0) + rng.Normal();
  };
  EpsilonAuditOptions opts;
  opts.trials = 400;
  const EpsilonAuditResult r = AuditEpsilonLowerBound(score, opts);
  EXPECT_GT(r.empirical_epsilon, 3.0) << r.Summary();
}

TEST(EpsilonAuditCoreTest, UselessDistinguisherCertifiesNothing) {
  // Identical distributions on both branches: epsilon_emp must be ~0 (the
  // holdout split prevents threshold overfitting from faking power).
  const auto score = [](bool with_canary, std::uint64_t trial) {
    util::Rng rng = util::Rng::StreamAt(2, trial * 2 + (with_canary ? 1 : 0));
    return rng.Normal();
  };
  EpsilonAuditOptions opts;
  opts.trials = 400;
  const EpsilonAuditResult r = AuditEpsilonLowerBound(score, opts);
  EXPECT_LT(r.empirical_epsilon, 0.5) << r.Summary();
}

TEST(EpsilonAuditCoreTest, DetectsLowerTailedSeparation) {
  // The attack must also work when the canary *lowers* the score.
  const auto score = [](bool with_canary, std::uint64_t trial) {
    util::Rng rng = util::Rng::StreamAt(3, trial * 2 + (with_canary ? 1 : 0));
    return (with_canary ? -50.0 : 0.0) + rng.Normal();
  };
  EpsilonAuditOptions opts;
  opts.trials = 400;
  const EpsilonAuditResult r = AuditEpsilonLowerBound(score, opts);
  EXPECT_FALSE(r.reject_above);
  EXPECT_GT(r.empirical_epsilon, 3.0) << r.Summary();
}

TEST(EpsilonAuditCoreTest, DeterministicGivenSeed) {
  const auto score = [](bool with_canary, std::uint64_t trial) {
    util::Rng rng = util::Rng::StreamAt(4, trial * 2 + (with_canary ? 1 : 0));
    return (with_canary ? 1.0 : 0.0) + rng.Normal();
  };
  EpsilonAuditOptions opts;
  opts.trials = 100;
  const EpsilonAuditResult a = AuditEpsilonLowerBound(score, opts);
  const EpsilonAuditResult b = AuditEpsilonLowerBound(score, opts);
  EXPECT_DOUBLE_EQ(a.empirical_epsilon, b.empirical_epsilon);
  EXPECT_DOUBLE_EQ(a.threshold, b.threshold);
}

// ------------------------------------------------- DP-SGD (positive)

TEST(DpSgdEpsilonAuditTest, CorrectImplementationIsConsistent) {
  DpSgdAuditSpec spec;
  const MechanismAuditResult r = AuditDpSgd(spec);
  // sigma=2, q=1, one step, delta=0.01 claims epsilon ~1.6; the empirical
  // bound for a correctly clipped canary stays well under it (documented
  // headroom: the distinguisher sees effect size 1/(sigma C) = 0.5).
  EXPECT_TRUE(r.consistent()) << r.Summary();
  EXPECT_GT(r.claimed_epsilon, 1.0);
  EXPECT_LT(r.claimed_epsilon, 2.5);
}

// ---------------------------------------- DP-SGD (negative controls)

TEST(DpSgdEpsilonAuditNegativeTest, DisabledClippingIsCaught) {
  P3GM_REQUIRE_FAULT_INJECTION();
  // With clipping off, the canary's gradient (norm 25) dwarfs the noise
  // (stddev sigma C = 2): the distinguisher separates almost perfectly
  // and certifies an epsilon far above the claim.
  FaultConfig fault;
  fault.skip_clip = true;
  FaultInjector::Scope scope(fault);
  const MechanismAuditResult r = AuditDpSgd(DpSgdAuditSpec{});
  EXPECT_FALSE(r.consistent()) << r.Summary();
  EXPECT_GT(r.empirical.empirical_epsilon, r.claimed_epsilon + 1.0);
}

TEST(DpSgdEpsilonAuditNegativeTest, DroppedAccountingIsCaught) {
  P3GM_REQUIRE_FAULT_INJECTION();
  // Mechanisms fire but the accountant never hears about them: the
  // claimed epsilon collapses to the empty-accountant floor and even the
  // weak honest distinguisher beats it.
  FaultConfig fault;
  fault.drop_accountant_events = true;
  FaultInjector::Scope scope(fault);
  const MechanismAuditResult r = AuditDpSgd(DpSgdAuditSpec{});
  EXPECT_LT(r.claimed_epsilon, 0.01) << r.Summary();
  EXPECT_FALSE(r.consistent()) << r.Summary();
}

// --------------------------------------------------- DP-EM / DP-PCA

TEST(DpEmEpsilonAuditTest, CorrectImplementationIsConsistent) {
  const MechanismAuditResult r = AuditDpEm(DpEmAuditSpec{});
  EXPECT_TRUE(r.consistent()) << r.Summary();
  EXPECT_GT(r.claimed_epsilon, 1.0);
}

TEST(DpEmEpsilonAuditNegativeTest, DisabledClippingIsCaught) {
  P3GM_REQUIRE_FAULT_INJECTION();
  if (!RunSlowAudits()) {
    GTEST_SKIP() << "set P3GM_RUN_SLOW_AUDITS=1 (tools/run_audits.sh)";
  }
  FaultConfig fault;
  fault.skip_clip = true;
  FaultInjector::Scope scope(fault);
  DpEmAuditSpec spec;
  spec.audit.trials = 600;
  const MechanismAuditResult r = AuditDpEm(spec);
  EXPECT_FALSE(r.consistent()) << r.Summary();
}

TEST(DpPcaEpsilonAuditTest, CorrectImplementationIsConsistent) {
  const MechanismAuditResult r = AuditDpPca(DpPcaAuditSpec{});
  EXPECT_TRUE(r.consistent()) << r.Summary();
  EXPECT_NEAR(r.claimed_epsilon, 1.0, 0.1);
}

TEST(DpPcaEpsilonAuditTest, LargeCanaryExposesThePublicMeanAssumption) {
  // FitDpPca centers by the empirical mean, which the paper treats as
  // public (footnote 2); the Wishart sensitivity analysis does not cover
  // it. A canary large relative to n shifts every centered row enough
  // that the auditor certifies more epsilon than the pure-DP claim —
  // evidence the assumption is load-bearing, and a regression guard that
  // the auditor keeps its teeth.
  DpPcaAuditSpec spec;
  spec.base_rows = 8;
  spec.canary_scale = 10.0;
  spec.epsilon = 3.0;
  const MechanismAuditResult r = AuditDpPca(spec);
  EXPECT_FALSE(r.consistent()) << r.Summary();
}

TEST(DpPcaEpsilonAuditNegativeTest, DisabledClippingIsCaught) {
  P3GM_REQUIRE_FAULT_INJECTION();
  if (!RunSlowAudits()) {
    GTEST_SKIP() << "set P3GM_RUN_SLOW_AUDITS=1 (tools/run_audits.sh)";
  }
  FaultConfig fault;
  fault.skip_clip = true;
  FaultInjector::Scope scope(fault);
  DpPcaAuditSpec spec;
  spec.audit.trials = 600;
  const MechanismAuditResult r = AuditDpPca(spec);
  EXPECT_FALSE(r.consistent()) << r.Summary();
}

// ------------------------------------------------ slow, higher power

TEST(SlowEpsilonAuditTest, DpSgdHighTrialSweep) {
  P3GM_REQUIRE_FAULT_INJECTION();
  if (!RunSlowAudits()) {
    GTEST_SKIP() << "set P3GM_RUN_SLOW_AUDITS=1 (tools/run_audits.sh)";
  }
  DpSgdAuditSpec spec;
  spec.audit.trials = 2000;
  const MechanismAuditResult honest = AuditDpSgd(spec);
  EXPECT_TRUE(honest.consistent()) << honest.Summary();

  FaultConfig fault;
  fault.skip_clip = true;
  FaultInjector::Scope scope(fault);
  const MechanismAuditResult broken = AuditDpSgd(spec);
  EXPECT_FALSE(broken.consistent()) << broken.Summary();
  // More trials certify a tighter violation.
  EXPECT_GT(broken.empirical.empirical_epsilon, 4.0);
}

}  // namespace
}  // namespace audit
}  // namespace p3gm
