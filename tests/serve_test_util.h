#ifndef P3GM_TESTS_SERVE_TEST_UTIL_H_
#define P3GM_TESTS_SERVE_TEST_UTIL_H_

// Shared fixtures for the serve test suite: a deterministic
// ReleasePackage built from explicit parts (no training pipeline), saved
// to a unique temp file so ModelRegistry/Server can load it the way
// production does, plus a tiny scoped-temp-dir helper.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "core/release.h"
#include "linalg/matrix.h"
#include "stats/gmm.h"
#include "util/check.h"

namespace p3gm {
namespace serve_test {

/// A small fixed-topology package: latent 3 -> hidden 8 -> output 6
/// (4 features + 2-class one-hot block), 2-component MoG prior. Weights
/// are a deterministic function of `variant` so two variants produce
/// distinguishable outputs.
inline core::ReleasePackage MakePackage(const std::string& name,
                                        int variant = 0) {
  const std::size_t dl = 3, h = 8, d = 6;
  linalg::Matrix w1(dl, h), b1(1, h), w2(h, d), b2(1, d);
  const double scale = 0.1 + 0.05 * variant;
  for (std::size_t i = 0; i < dl; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      w1(i, j) = scale * (((i * h + j) % 7) - 3);
    }
  }
  for (std::size_t j = 0; j < h; ++j) b1(0, j) = 0.01 * j;
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      w2(i, j) = scale * (((i * d + j) % 5) - 2);
    }
  }
  for (std::size_t j = 0; j < d; ++j) b2(0, j) = -0.02 * j;

  linalg::Matrix means(2, dl), variances(2, dl, 0.5);
  for (std::size_t j = 0; j < dl; ++j) {
    means(0, j) = -1.0;
    means(1, j) = 1.0 + 0.1 * variant;
  }
  auto prior = stats::GaussianMixture::Create({0.4, 0.6}, means, variances);
  P3GM_CHECK(prior.ok());
  auto pkg = core::ReleasePackage::FromParts(
      name, /*num_classes=*/2, core::DecoderType::kBernoulli,
      std::move(*prior), std::move(w1), std::move(b1), std::move(w2),
      std::move(b2));
  P3GM_CHECK(pkg.ok());
  return std::move(*pkg);
}

/// Creates a unique temp directory; removes it (and its files) on
/// destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/p3gm_serve_test_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    P3GM_CHECK(made != nullptr);
    path_ = made;
  }
  ~TempDir() {
    for (const std::string& f : files_) ::unlink(f.c_str());
    ::rmdir(path_.c_str());
  }

  /// Writes `pkg` into the directory as <basename>.release and returns
  /// the full path. The serving name will be <basename>.
  std::string WritePackage(const core::ReleasePackage& pkg,
                           const std::string& basename) {
    const std::string path = path_ + "/" + basename + ".release";
    P3GM_CHECK(pkg.Save(path).ok());
    files_.push_back(path);
    return path;
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<std::string> files_;
};

/// Number of open file descriptors of this process (via /proc/self/fd;
/// the count includes the directory stream itself, which is constant
/// across calls, so before/after comparisons are still exact).
inline int CountOpenFds() {
  int n = 0;
  if (DIR* dir = ::opendir("/proc/self/fd")) {
    while (::readdir(dir) != nullptr) ++n;
    ::closedir(dir);
  }
  return n;
}

}  // namespace serve_test
}  // namespace p3gm

#endif  // P3GM_TESTS_SERVE_TEST_UTIL_H_
