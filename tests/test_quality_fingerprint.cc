// Reference-fingerprint suite (obs/quality/fingerprint.h + the
// core::ReleasePackage embedding): exact quantile grids, serialization
// round trips, release-format versioning (v2 embeds a fingerprint; v1
// files — and fresh saves without one — stay byte-compatible), and the
// determinism of core::BuildFingerprint.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "core/release.h"
#include "linalg/matrix.h"
#include "obs/quality/fingerprint.h"
#include "serve_test_util.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace p3gm {
namespace obs {
namespace quality {
namespace {

using serve_test::MakePackage;
using serve_test::TempDir;

linalg::Matrix DeterministicMatrix(std::size_t rows, std::size_t cols,
                                   std::uint64_t seed) {
  linalg::Matrix m(rows, cols);
  std::uint64_t state = seed;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      m(r, c) = static_cast<double>(state >> 11) /
                static_cast<double>(1ULL << 53);
    }
  }
  return m;
}

TEST(Fingerprint, FromDecodedMatchesExactStatistics) {
  const std::size_t rows = 500, dim = 3;
  const linalg::Matrix data = DeterministicMatrix(rows, dim, 1);
  const Fingerprint fp = Fingerprint::FromDecoded(data, /*num_classes=*/0,
                                                  /*seed=*/77);
  EXPECT_EQ(fp.feature_dim(), dim);
  EXPECT_EQ(fp.num_classes(), 0u);
  EXPECT_EQ(fp.reference_rows(), rows);
  EXPECT_EQ(fp.seed(), 77u);
  for (std::size_t c = 0; c < dim; ++c) {
    std::vector<double> column(rows);
    double sum = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      column[r] = data(r, c);
      sum += column[r];
    }
    const double mean = sum / static_cast<double>(rows);
    double m2 = 0.0;
    for (double v : column) m2 += (v - mean) * (v - mean);
    std::sort(column.begin(), column.end());

    const FeatureFingerprint& ff = fp.feature(c);
    EXPECT_NEAR(ff.mean, mean, 1e-12);
    EXPECT_NEAR(ff.stddev, std::sqrt(m2 / static_cast<double>(rows)), 1e-12);
    EXPECT_EQ(ff.min, column.front());
    EXPECT_EQ(ff.max, column.back());
    ASSERT_EQ(ff.quantiles.size(), Fingerprint::kGridSize);
    for (std::size_t i = 0; i < Fingerprint::kGridSize; ++i) {
      EXPECT_EQ(ff.quantiles[i],
                ExactQuantileSorted(column, Fingerprint::GridPoint(i)))
          << "feature " << c << " grid " << i;
    }
  }
}

TEST(Fingerprint, FromDecodedSplitsOneHotLabelBlock) {
  // 2 features + 3-class one-hot block; labels by argmax.
  linalg::Matrix data(4, 5, 0.0);
  for (std::size_t r = 0; r < 4; ++r) {
    data(r, 0) = 0.1 * static_cast<double>(r);
    data(r, 1) = 1.0 - 0.1 * static_cast<double>(r);
  }
  data(0, 2) = 0.9;  // class 0
  data(1, 3) = 0.8;  // class 1
  data(2, 3) = 0.7;  // class 1
  data(3, 4) = 0.6;  // class 2
  const Fingerprint fp = Fingerprint::FromDecoded(data, /*num_classes=*/3,
                                                  /*seed=*/0);
  EXPECT_EQ(fp.feature_dim(), 2u);
  ASSERT_EQ(fp.num_classes(), 3u);
  EXPECT_NEAR(fp.label_probs()[0], 0.25, 1e-12);
  EXPECT_NEAR(fp.label_probs()[1], 0.50, 1e-12);
  EXPECT_NEAR(fp.label_probs()[2], 0.25, 1e-12);
}

TEST(Fingerprint, WriterReaderRoundTrip) {
  const linalg::Matrix features = DeterministicMatrix(200, 4, 2);
  std::vector<std::size_t> labels(200);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2;
  const Fingerprint original =
      Fingerprint::FromDataset(features, labels, /*num_classes=*/2,
                               /*seed=*/5);

  TempDir dir;
  const std::string path = dir.path() + "/fingerprint.bin";
  constexpr std::uint32_t kMagic = 0x46505154;
  {
    util::BinaryWriter writer(path, kMagic, 1);
    original.WriteTo(&writer);
    ASSERT_TRUE(writer.Close().ok());
  }
  util::BinaryReader reader(path, kMagic, 1);
  auto loaded = Fingerprint::ReadFrom(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(*loaded == original);
  std::remove(path.c_str());
}

// ------------------------------------------- release-package embedding

std::uint32_t FileFormatVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::uint32_t magic = 0, version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  return version;
}

TEST(ReleaseFingerprint, SaveWithoutFingerprintStaysV1) {
  TempDir dir;
  const core::ReleasePackage pkg = MakePackage("plain");
  const std::string path = dir.WritePackage(pkg, "plain");
  EXPECT_EQ(FileFormatVersion(path), 1u);

  auto loaded = core::ReleasePackage::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->fingerprint(), nullptr);
  // A v1 (fingerprint-less) package still serves.
  util::Rng rng(1);
  auto sample = loaded->Generate(8, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 8u);
}

TEST(ReleaseFingerprint, EmbeddedFingerprintRoundTripsAsV2) {
  TempDir dir;
  core::ReleasePackage pkg = MakePackage("printed");
  auto fp = core::BuildFingerprint(pkg, /*n=*/512, /*seed=*/9);
  ASSERT_TRUE(fp.ok()) << fp.status();
  const Fingerprint expected = *fp;
  pkg.SetFingerprint(std::move(*fp));
  const std::string path = dir.WritePackage(pkg, "printed");
  EXPECT_EQ(FileFormatVersion(path), 2u);

  auto loaded = core::ReleasePackage::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_NE(loaded->fingerprint(), nullptr);
  EXPECT_TRUE(*loaded->fingerprint() == expected);
  EXPECT_EQ(loaded->fingerprint()->feature_dim(), loaded->feature_dim());
}

TEST(ReleaseFingerprint, ClearFingerprintRestoresV1Bytes) {
  // Saving with the fingerprint cleared must produce the exact bytes of
  // a package that never had one — the backward-compatibility contract
  // for readers of the old format.
  TempDir dir;
  core::ReleasePackage pkg = MakePackage("bytes");
  const std::string v1_path = dir.WritePackage(pkg, "bytes_v1");
  auto fp = core::BuildFingerprint(pkg, /*n=*/256, /*seed=*/3);
  ASSERT_TRUE(fp.ok());
  pkg.SetFingerprint(std::move(*fp));
  pkg.ClearFingerprint();
  const std::string again_path = dir.WritePackage(pkg, "bytes_again");

  std::ifstream a(v1_path, std::ios::binary), b(again_path, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(ReleaseFingerprint, BuildFingerprintIsDeterministic) {
  const core::ReleasePackage pkg = MakePackage("det");
  auto a = core::BuildFingerprint(pkg, 512, 11);
  auto b = core::BuildFingerprint(pkg, 512, 11);
  auto c = core::BuildFingerprint(pkg, 512, 12);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);  // Different reference draw.
}

TEST(ReleaseFingerprint, BuildFingerprintRejectsZeroRows) {
  const core::ReleasePackage pkg = MakePackage("zero");
  EXPECT_FALSE(core::BuildFingerprint(pkg, 0, 1).ok());
}

}  // namespace
}  // namespace quality
}  // namespace obs
}  // namespace p3gm
