#include <cmath>

#include "gtest/gtest.h"
#include "stats/dp_em.h"
#include "util/rng.h"

namespace p3gm {
namespace stats {
namespace {

// Two separated blobs inside the unit ball (DP-EM clips to norm 1).
linalg::Matrix UnitBallBlobs(std::size_t n_per, util::Rng* rng) {
  linalg::Matrix x(2 * n_per, 2);
  for (std::size_t i = 0; i < n_per; ++i) {
    x(i, 0) = rng->Normal(-0.5, 0.08);
    x(i, 1) = rng->Normal(0.0, 0.08);
    x(n_per + i, 0) = rng->Normal(0.5, 0.08);
    x(n_per + i, 1) = rng->Normal(0.0, 0.08);
  }
  return x;
}

TEST(DpEmTest, ValidatesInput) {
  util::Rng rng(3);
  EXPECT_FALSE(FitGmmDpEm(linalg::Matrix(), {}, &rng).ok());
  DpEmOptions opt;
  opt.num_components = 10;
  EXPECT_FALSE(FitGmmDpEm(linalg::Matrix(4, 2, 0.1), opt, &rng).ok());
  DpEmOptions bad;
  bad.noise_multiplier = -1.0;
  EXPECT_FALSE(FitGmmDpEm(linalg::Matrix(4, 2, 0.1), bad, &rng).ok());
}

TEST(DpEmTest, NoNoiseRecoversBlobs) {
  util::Rng data_rng(5), mech_rng(7);
  linalg::Matrix x = UnitBallBlobs(400, &data_rng);
  DpEmOptions opt;
  opt.num_components = 2;
  opt.iters = 30;
  opt.noise_multiplier = 0.0;
  auto result = FitGmmDpEm(x, opt, &mech_rng);
  ASSERT_TRUE(result.ok());
  const auto& g = result->mixture;
  const double m0 = g.means()(0, 0), m1 = g.means()(1, 0);
  EXPECT_NEAR(std::min(m0, m1), -0.5, 0.1);
  EXPECT_NEAR(std::max(m0, m1), 0.5, 0.1);
}

TEST(DpEmTest, ModerateNoiseStillFindsStructure) {
  util::Rng data_rng(11), mech_rng(13);
  linalg::Matrix x = UnitBallBlobs(4000, &data_rng);
  DpEmOptions opt;
  opt.num_components = 2;
  opt.iters = 15;
  opt.noise_multiplier = 2.0;  // Noise ~2 vs cluster mass ~4000.
  auto result = FitGmmDpEm(x, opt, &mech_rng);
  ASSERT_TRUE(result.ok());
  const auto& g = result->mixture;
  const double m0 = g.means()(0, 0), m1 = g.means()(1, 0);
  EXPECT_LT(std::min(m0, m1), -0.2);
  EXPECT_GT(std::max(m0, m1), 0.2);
}

TEST(DpEmTest, OutputsAreValidMixtures) {
  util::Rng data_rng(17), mech_rng(19);
  linalg::Matrix x = UnitBallBlobs(100, &data_rng);
  DpEmOptions opt;
  opt.num_components = 3;
  opt.iters = 10;
  opt.noise_multiplier = 50.0;  // Heavy noise: output must still be valid.
  auto result = FitGmmDpEm(x, opt, &mech_rng);
  ASSERT_TRUE(result.ok());
  const auto& g = result->mixture;
  double wsum = 0.0;
  for (double w : g.weights()) {
    EXPECT_GT(w, 0.0);
    wsum += w;
  }
  EXPECT_NEAR(wsum, 1.0, 1e-9);
  for (std::size_t i = 0; i < g.variances().size(); ++i) {
    EXPECT_GT(g.variances().data()[i], 0.0);
  }
  // Means stay in the clipped domain (unit ball).
  for (std::size_t k = 0; k < g.num_components(); ++k) {
    double norm2 = 0.0;
    for (std::size_t j = 0; j < g.dim(); ++j) {
      norm2 += g.means()(k, j) * g.means()(k, j);
    }
    EXPECT_LE(std::sqrt(norm2), 1.0 + 1e-9);
  }
}

TEST(DpEmTest, ClipNormReported) {
  util::Rng data_rng(23), mech_rng(29);
  linalg::Matrix x = UnitBallBlobs(50, &data_rng);
  auto result = FitGmmDpEm(x, DpEmOptions{}, &mech_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->clip_norm, 1.0);
}

TEST(DpEmTest, DeterministicGivenSeeds) {
  util::Rng data_rng(31);
  linalg::Matrix x = UnitBallBlobs(100, &data_rng);
  DpEmOptions opt;
  opt.noise_multiplier = 10.0;
  util::Rng r1(37), r2(37);
  auto a = FitGmmDpEm(x, opt, &r1);
  auto b = FitGmmDpEm(x, opt, &r2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->mixture.means(), b->mixture.means());
}

TEST(DpEmTest, MoreNoiseDegradesFit) {
  util::Rng data_rng(41);
  linalg::Matrix x = UnitBallBlobs(500, &data_rng);
  DpEmOptions low, high;
  low.num_components = high.num_components = 2;
  low.iters = high.iters = 10;
  low.noise_multiplier = 0.0;
  high.noise_multiplier = 200.0;
  util::Rng r1(43), r2(47);
  auto gl = FitGmmDpEm(x, low, &r1);
  auto gh = FitGmmDpEm(x, high, &r2);
  ASSERT_TRUE(gl.ok() && gh.ok());
  EXPECT_GT(gl->mixture.MeanLogLikelihood(x),
            gh->mixture.MeanLogLikelihood(x));
}

}  // namespace
}  // namespace stats
}  // namespace p3gm
