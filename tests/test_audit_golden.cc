#include <string>

#include "gtest/gtest.h"
#include "audit/golden.h"

namespace p3gm {
namespace audit {
namespace {

#ifndef P3GM_GOLDEN_DIR
#error "P3GM_GOLDEN_DIR must point at the checked-in golden traces"
#endif

TEST(GoldenTraceTest, TraceHasExpectedShape) {
  const std::vector<std::string> lines = GoldenPgmTraceLines();
  // Header + 4 epochs + final + sample.
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines[0], "# p3gm golden trace v1");
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_EQ(lines[1 + e].rfind("epoch,", 0), 0u) << lines[1 + e];
  }
  EXPECT_EQ(lines[5].rfind("final,", 0), 0u) << lines[5];
  EXPECT_EQ(lines[6].rfind("sample,", 0), 0u) << lines[6];
}

TEST(GoldenTraceTest, TraceIsBitReproducible) {
  const std::vector<std::string> a = GoldenPgmTraceLines();
  const std::vector<std::string> b = GoldenPgmTraceLines();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(GoldenTraceTest, MatchesCheckedInGolden) {
  const GoldenCompareResult r =
      CompareGoldenTrace(std::string(P3GM_GOLDEN_DIR) + "/pgm_small.golden");
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GoldenTraceTest, MismatchIsReportedWithRegenHint) {
  const GoldenCompareResult r = CompareGoldenTrace("/nonexistent/file");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("regen_golden"), std::string::npos);
}

}  // namespace
}  // namespace audit
}  // namespace p3gm
