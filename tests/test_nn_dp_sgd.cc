#include <cmath>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "audit/fault_injection.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dp_sgd.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace p3gm {
namespace nn {
namespace {

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c, util::Rng* rng,
                            double scale = 1.0) {
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Normal(0.0, scale);
  }
  return m;
}

TEST(DpSgdTest, RejectsConvStacks) {
  util::Rng rng(3);
  Sequential cnn;
  cnn.Emplace<Conv2d>("c", 1, 4, 4, 1, 3, 1, &rng);
  DpSgdOptions opt;
  DpSgdStep step(opt, &rng);
  cnn.Forward(RandomMatrix(2, 16, &rng), true);
  cnn.Backward(RandomMatrix(2, 16, &rng), true);
  EXPECT_FALSE(step.CollectSquaredNorms({&cnn}, 2).ok());
}

TEST(DpSgdTest, ClipScalesComputedFromTotalNorm) {
  util::Rng rng(5);
  Linear lin("l", 2, 2, &rng);
  linalg::Matrix x = RandomMatrix(3, 2, &rng, 2.0);
  linalg::Matrix dy = RandomMatrix(3, 2, &rng, 2.0);
  lin.Forward(x, true);
  lin.Backward(dy, false);
  DpSgdOptions opt;
  opt.clip_norm = 0.5;
  DpSgdStep step(opt, &rng);
  ASSERT_TRUE(step.CollectSquaredNorms({&lin}, 3).ok());
  std::vector<double> sq(3, 0.0);
  lin.AddPerExampleSquaredGradNorms(&sq);
  for (std::size_t i = 0; i < 3; ++i) {
    const double expected =
        std::min(1.0, opt.clip_norm / std::sqrt(sq[i]));
    EXPECT_NEAR(step.clip_scales()[i], expected, 1e-12);
  }
}

TEST(DpSgdTest, NoNoisePathEqualsClippedAverage) {
  // With sigma = 0 the privatized gradient must equal the average of
  // individually clipped per-example gradients.
  util::Rng rng(7);
  Linear lin("l", 3, 2, &rng);
  const linalg::Matrix x = RandomMatrix(4, 3, &rng, 2.0);
  const linalg::Matrix dy = RandomMatrix(4, 2, &rng, 2.0);
  lin.Forward(x, true);
  lin.Backward(dy, false);

  DpSgdOptions opt;
  opt.clip_norm = 1.0;
  opt.noise_multiplier = 0.0;
  opt.lot_size = 4;
  DpSgdStep step(opt, &rng);
  ASSERT_TRUE(step.CollectSquaredNorms({&lin}, 4).ok());
  lin.weight().ZeroGrad();
  lin.bias().ZeroGrad();
  step.ApplyClippedAccumulation({&lin});
  step.AddNoiseAndAverage({&lin.weight(), &lin.bias()}, 4);

  // Reference: each example alone, clipped, then averaged.
  linalg::Matrix expected_w(3, 2);
  linalg::Matrix expected_b(1, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    Linear single("s", 3, 2, &rng);
    single.weight().value = lin.weight().value;
    single.bias().value = lin.bias().value;
    single.Forward(x.SelectRows({i}), true);
    single.Backward(dy.SelectRows({i}), true);
    const double norm = std::sqrt(
        single.weight().grad.FrobeniusNorm() *
            single.weight().grad.FrobeniusNorm() +
        single.bias().grad.FrobeniusNorm() *
            single.bias().grad.FrobeniusNorm());
    const double c = std::min(1.0, opt.clip_norm / norm);
    expected_w += single.weight().grad * c;
    expected_b += single.bias().grad * c;
  }
  expected_w *= 0.25;
  expected_b *= 0.25;
  EXPECT_LT(linalg::MaxAbsDiff(lin.weight().grad, expected_w), 1e-9);
  EXPECT_LT(linalg::MaxAbsDiff(lin.bias().grad, expected_b), 1e-9);
}

TEST(DpSgdTest, NoiseVarianceMatchesSigmaC) {
  util::Rng rng(11);
  DpSgdOptions opt;
  opt.clip_norm = 2.0;
  opt.noise_multiplier = 3.0;
  opt.lot_size = 1;
  DpSgdStep step(opt, &rng);
  Parameter p("p", 100, 100);
  step.AddNoiseAndAverage({&p}, 1);
  // grad = N(0, (sigma C)^2) / lot = N(0, 36).
  double s2 = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    s2 += p.grad.data()[i] * p.grad.data()[i];
  }
  EXPECT_NEAR(std::sqrt(s2 / p.size()), 6.0, 0.15);
}

TEST(DpSgdTest, LotSizeDividesGradient) {
  util::Rng rng(13);
  DpSgdOptions opt;
  opt.clip_norm = 1.0;
  opt.noise_multiplier = 0.0;
  opt.lot_size = 10;
  DpSgdStep step(opt, &rng);
  Parameter p("p", 1, 1);
  p.grad(0, 0) = 5.0;
  step.AddNoiseAndAverage({&p}, 3);  // lot_size wins over batch size.
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 0.5);
}

TEST(DpSgdTest, ExternalNormsParticipateInScales) {
  util::Rng rng(17);
  DpSgdOptions opt;
  opt.clip_norm = 1.0;
  DpSgdStep step(opt, &rng);
  step.AddExternalSquaredNorms({4.0, 0.25});
  EXPECT_NEAR(step.clip_scales()[0], 0.5, 1e-12);   // Norm 2 -> clip.
  EXPECT_NEAR(step.clip_scales()[1], 1.0, 1e-12);   // Norm 0.5 -> keep.
}

TEST(DpSgdTest, MeanClipScaleDiagnostic) {
  util::Rng rng(19);
  DpSgdOptions opt;
  opt.clip_norm = 1.0;
  DpSgdStep step(opt, &rng);
  step.AddExternalSquaredNorms({4.0, 4.0});
  (void)step.clip_scales();
  EXPECT_NEAR(step.MeanClipScale(), 0.5, 1e-12);
}

TEST(DpSgdTest, GoodfellowNormsMatchBruteForcePerExampleBackward) {
  // Regression for the Goodfellow (2015) per-example norm trick on a
  // 2-layer net: the squared norms reported by
  // AddPerExampleSquaredGradNorms must equal the squared Frobenius norm
  // of the full gradient computed by a separate backward pass per
  // example.
  util::Rng rng(29);
  Sequential net;
  Linear* l1 = net.Emplace<Linear>("l1", 5, 7, &rng);
  net.Emplace<Sigmoid>();
  Linear* l2 = net.Emplace<Linear>("l2", 7, 4, &rng);

  const std::size_t batch = 6;
  const linalg::Matrix x = RandomMatrix(batch, 5, &rng, 1.5);
  const linalg::Matrix dy = RandomMatrix(batch, 4, &rng, 1.5);
  net.Forward(x, true);
  net.Backward(dy, /*accumulate=*/false);
  std::vector<double> sq(batch, 0.0);
  net.AddPerExampleSquaredGradNorms(&sq);

  for (std::size_t i = 0; i < batch; ++i) {
    // Brute force: a fresh copy of the net, one example, accumulate
    // gradients, take the total squared Frobenius norm.
    Sequential single;
    Linear* s1 = single.Emplace<Linear>("s1", 5, 7, &rng);
    single.Emplace<Sigmoid>();
    Linear* s2 = single.Emplace<Linear>("s2", 7, 4, &rng);
    s1->weight().value = l1->weight().value;
    s1->bias().value = l1->bias().value;
    s2->weight().value = l2->weight().value;
    s2->bias().value = l2->bias().value;
    single.Forward(x.SelectRows({i}), true);
    single.Backward(dy.SelectRows({i}), /*accumulate=*/true);
    double expected = 0.0;
    for (Parameter* p : single.Parameters()) {
      const double f = p->grad.FrobeniusNorm();
      expected += f * f;
    }
    EXPECT_NEAR(sq[i], expected, 1e-9 * (1.0 + expected)) << "example " << i;
  }
}

TEST(DpSgdTest, MultiStackNormsAccumulate) {
  util::Rng rng(23);
  Linear a("a", 2, 2, &rng);
  Linear b("b", 2, 2, &rng);
  linalg::Matrix x = RandomMatrix(2, 2, &rng);
  linalg::Matrix dy = RandomMatrix(2, 2, &rng);
  a.Forward(x, true);
  a.Backward(dy, false);
  b.Forward(x, true);
  b.Backward(dy, false);
  DpSgdOptions opt;
  DpSgdStep step(opt, &rng);
  ASSERT_TRUE(step.CollectSquaredNorms({&a, &b}, 2).ok());
  std::vector<double> sq_a(2, 0.0), sq_b(2, 0.0);
  a.AddPerExampleSquaredGradNorms(&sq_a);
  b.AddPerExampleSquaredGradNorms(&sq_b);
  for (std::size_t i = 0; i < 2; ++i) {
    const double total = sq_a[i] + sq_b[i];
    const double expected = std::min(1.0, 1.0 / std::sqrt(total));
    EXPECT_NEAR(step.clip_scales()[i], expected, 1e-12);
  }
}

TEST(DpSgdTest, DefaultFaultInjectionIsANoOp) {
  // The audit hooks compiled into the DP hot paths must be inert with the
  // default configuration: one step with no Scope installed and one step
  // inside a default-config Scope are bit-identical.
  const auto run_step = [](bool with_scope) {
    std::unique_ptr<audit::FaultInjector::Scope> scope;
    if (with_scope) {
      scope = std::make_unique<audit::FaultInjector::Scope>(
          audit::FaultConfig{});
    }
    util::Rng rng(77);
    Linear layer("fc", 3, 2, &rng);
    util::Rng data_rng(78);
    const linalg::Matrix x = RandomMatrix(4, 3, &data_rng, 2.0);
    layer.Forward(x, true);
    linalg::Matrix upstream(4, 2);
    upstream.Fill(1.0);
    layer.Backward(upstream, /*accumulate=*/false);
    DpSgdOptions opt;
    opt.clip_norm = 1.0;
    opt.noise_multiplier = 1.5;
    util::Rng noise_rng(79);
    DpSgdStep step(opt, &noise_rng);
    for (Parameter* p : layer.Parameters()) p->ZeroGrad();
    EXPECT_TRUE(step.CollectSquaredNorms({&layer}, 4).ok());
    step.ApplyClippedAccumulation({&layer});
    step.AddNoiseAndAverage(layer.Parameters(), 4);
    std::vector<double> out;
    for (Parameter* p : layer.Parameters()) {
      for (std::size_t i = 0; i < p->grad.size(); ++i) {
        out.push_back(p->grad.data()[i]);
      }
    }
    return out;
  };
  const std::vector<double> bare = run_step(false);
  const std::vector<double> scoped = run_step(true);
  ASSERT_EQ(bare.size(), scoped.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_DOUBLE_EQ(bare[i], scoped[i]);
  }
}

TEST(DpSgdTest, NoiseScaleFaultScalesTheNoise) {
  if (!audit::kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with -DP3GM_FAULT_INJECTION=OFF";
  }
  // With clipping bypassed via zero gradients (all-zero inputs and
  // upstream 0 means the only contribution is noise), halving noise_scale
  // must halve the privatized gradient exactly.
  const auto noise_only = [](double noise_scale) {
    audit::FaultConfig fault;
    fault.noise_scale = noise_scale;
    audit::FaultInjector::Scope scope(fault);
    util::Rng rng(80);
    Linear layer("fc", 3, 2, &rng);
    linalg::Matrix x(4, 3);
    layer.Forward(x, true);
    linalg::Matrix upstream(4, 2);  // Zero upstream: zero gradients.
    layer.Backward(upstream, /*accumulate=*/false);
    DpSgdOptions opt;
    util::Rng noise_rng(81);
    DpSgdStep step(opt, &noise_rng);
    for (Parameter* p : layer.Parameters()) p->ZeroGrad();
    EXPECT_TRUE(step.CollectSquaredNorms({&layer}, 4).ok());
    step.ApplyClippedAccumulation({&layer});
    step.AddNoiseAndAverage(layer.Parameters(), 4);
    std::vector<double> out;
    for (Parameter* p : layer.Parameters()) {
      for (std::size_t i = 0; i < p->grad.size(); ++i) {
        out.push_back(p->grad.data()[i]);
      }
    }
    return out;
  };
  const std::vector<double> full = noise_only(1.0);
  const std::vector<double> half = noise_only(0.5);
  ASSERT_EQ(full.size(), half.size());
  bool any_nonzero = false;
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_DOUBLE_EQ(half[i], 0.5 * full[i]);
    if (full[i] != 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace nn
}  // namespace p3gm
