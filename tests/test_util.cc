#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/trace_context.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"

namespace p3gm {
namespace util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    P3GM_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::Internal("boom");
  };
  auto use = [&](bool ok) -> Status {
    P3GM_ASSIGN_OR_RETURN(int v, make(ok));
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_TRUE(use(true).ok());
  EXPECT_EQ(use(false).code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 10; ++i) diff += (a.NextU64() != b.NextU64());
  EXPECT_GT(diff, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(7);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.Uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, 600);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double s = 0.0, s2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.01);
  EXPECT_NEAR(s2 / n, 1.0, 0.02);
}

TEST(RngTest, NormalScaled) {
  Rng rng(13);
  double s = 0.0, s2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    s += x;
    s2 += (x - 3.0) * (x - 3.0);
  }
  EXPECT_NEAR(s / n, 3.0, 0.05);
  EXPECT_NEAR(s2 / n, 4.0, 0.1);
}

TEST(RngTest, LaplaceMomentsMatchScale) {
  Rng rng(17);
  const double b = 1.5;
  double s = 0.0, s2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Laplace(b);
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  // Var(Laplace(b)) = 2 b^2.
  EXPECT_NEAR(s2 / n, 2.0 * b * b, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  const double rate = 2.0;
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.Exponential(rate);
  EXPECT_NEAR(s / n, 1.0 / rate, 0.01);
}

class RngGammaTest : public ::testing::TestWithParam<double> {};

TEST_P(RngGammaTest, MomentsMatchShape) {
  const double shape = GetParam();
  const double scale = 1.3;
  Rng rng(23);
  double s = 0.0, s2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.Gamma(shape, scale);
  const double mean = s / n;
  EXPECT_NEAR(mean, shape * scale, 0.05 * shape * scale + 0.02);
  Rng rng2(29);
  for (int i = 0; i < n; ++i) {
    const double x = rng2.Gamma(shape, scale);
    s2 += (x - shape * scale) * (x - shape * scale);
  }
  EXPECT_NEAR(s2 / n, shape * scale * scale,
              0.08 * shape * scale * scale + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RngGammaTest,
                         ::testing::Values(0.5, 1.0, 2.5, 10.0));

TEST(RngTest, ChiSquaredMeanEqualsDf) {
  Rng rng(31);
  const double df = 5.0;
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += rng.ChiSquared(df);
  EXPECT_NEAR(s / n, df, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(41);
  std::vector<double> w = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(RngTest, CategoricalZeroWeightNeverPicked) {
  Rng rng(43);
  std::vector<double> w = {0.0, 1.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.Categorical(w), 1u);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(47);
  auto p = rng.Permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, PoissonSampleRate) {
  Rng rng(53);
  std::size_t total = 0;
  const int trials = 1000;
  for (int t = 0; t < trials; ++t) total += rng.PoissonSample(100, 0.2).size();
  EXPECT_NEAR(static_cast<double>(total) / trials, 20.0, 1.0);
}

TEST(RngTest, PoissonSampleSortedUnique) {
  Rng rng(59);
  auto s = rng.PoissonSample(50, 0.5);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(61);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(67);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, WritesRowsAndEscapes) {
  const std::string path = ::testing::TempDir() + "/p3gm_csv_test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.status().ok());
    w.WriteHeader({"a", "b,c", "d\"e"});
    w.WriteNumericRow({1.5, 2.0});
    w.Close();
  }
  std::ifstream f(path);
  std::string line1, line2;
  std::getline(f, line1);
  std::getline(f, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1.5,2");
}

TEST(CsvTest, BadPathReportsIoError) {
  CsvWriter w("/nonexistent_dir_p3gm/x.csv");
  EXPECT_EQ(w.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------- String

TEST(StringTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "", "bc"};
  EXPECT_EQ(Join(parts, ","), "a,,bc");
  EXPECT_EQ(Split("a,,bc", ','), parts);
}

TEST(StringTest, Format) {
  EXPECT_EQ(Format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(Format("%.2f", 1.239), "1.24");
}

TEST(StringTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(StringTest, PadLeftAndRight) {
  EXPECT_EQ(Pad("ab", 4), "  ab");
  EXPECT_EQ(Pad("ab", -4), "ab  ");
  EXPECT_EQ(Pad("abcd", 2), "abcd");
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

TEST(StopwatchTest, MonotonicNonDecreasing) {
  // The stopwatch sits on steady_clock (enforced by a static_assert in
  // the header), so successive reads can never go backwards — even if
  // the system wall clock is stepped mid-run.
  Stopwatch sw;
  double prev = sw.ElapsedSeconds();
  for (int i = 0; i < 1000; ++i) {
    const double now = sw.ElapsedSeconds();
    ASSERT_GE(now, prev);
    prev = now;
  }
  EXPECT_GE(sw.ElapsedMillis(), prev * 1e3);
}

TEST(StopwatchTest, RestartResetsOrigin) {
  Stopwatch sw;
  volatile double spin = 0.0;
  while (sw.ElapsedSeconds() < 1e-4) spin = spin + 1.0;
  (void)spin;
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1e-4 + 1.0);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelFilterRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Messages below the filter are dropped (no crash, no output check
  // possible on stderr here; this exercises the path).
  P3GM_LOG(Debug) << "dropped " << 42;
  P3GM_LOG(Error) << "emitted";
  SetLogLevel(original);
}

TEST(LoggingTest, StreamFormatsMixedTypes) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // Keep the test run quiet.
  P3GM_LOG(Info) << "x=" << 1.5 << " y=" << 7 << " z=" << std::string("s");
  SetLogLevel(original);
}

// Captures complete records via the test sink and restores the previous
// logging state (level, format, sink, env vars) on destruction.
class LogCapture {
 public:
  LogCapture()
      : level_(GetLogLevel()), format_(GetLogFormat()) {
    SetLogSinkForTest([this](LogLevel level, const std::string& record) {
      levels.push_back(level);
      records.push_back(record);
    });
  }
  ~LogCapture() {
    SetLogSinkForTest(nullptr);
    SetLogLevel(level_);
    SetLogFormat(format_);
    ::unsetenv("P3GM_LOG_LEVEL");
    ::unsetenv("P3GM_LOG_FORMAT");
  }

  std::vector<LogLevel> levels;
  std::vector<std::string> records;

 private:
  LogLevel level_;
  LogFormat format_;
};

TEST(LoggingTest, ParseLogLevelAcceptsEverySpelling) {
  struct Case {
    const char* text;
    LogLevel want;
  } cases[] = {
      {"debug", LogLevel::kDebug},   {"DEBUG", LogLevel::kDebug},
      {"info", LogLevel::kInfo},     {"Info", LogLevel::kInfo},
      {"warn", LogLevel::kWarning},  {"warning", LogLevel::kWarning},
      {"WARNING", LogLevel::kWarning}, {"error", LogLevel::kError},
      {"ERROR", LogLevel::kError},
  };
  for (const Case& c : cases) {
    LogLevel out = LogLevel::kInfo;
    EXPECT_TRUE(ParseLogLevel(c.text, &out)) << c.text;
    EXPECT_EQ(out, c.want) << c.text;
  }
}

TEST(LoggingTest, ParseLogLevelRejectsJunkUntouched) {
  const char* bad[] = {"", "verbose", "warn ", " info", "2", "infoo"};
  for (const char* text : bad) {
    LogLevel out = LogLevel::kError;
    EXPECT_FALSE(ParseLogLevel(text, &out)) << text;
    EXPECT_EQ(out, LogLevel::kError) << "*out must stay untouched";
  }
}

TEST(LoggingTest, ParseLogFormatRoundTrip) {
  LogFormat out = LogFormat::kText;
  EXPECT_TRUE(ParseLogFormat("json", &out));
  EXPECT_EQ(out, LogFormat::kJson);
  EXPECT_TRUE(ParseLogFormat("TEXT", &out));
  EXPECT_EQ(out, LogFormat::kText);
  out = LogFormat::kJson;
  EXPECT_FALSE(ParseLogFormat("yaml", &out));
  EXPECT_FALSE(ParseLogFormat("", &out));
  EXPECT_EQ(out, LogFormat::kJson);
}

TEST(LoggingTest, EnvVarsApplyOnInit) {
  LogCapture capture;
  ::setenv("P3GM_LOG_LEVEL", "warn", 1);
  ::setenv("P3GM_LOG_FORMAT", "json", 1);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  EXPECT_EQ(GetLogFormat(), LogFormat::kJson);
  EXPECT_TRUE(capture.records.empty());  // Valid values: no diagnostics.
}

TEST(LoggingTest, InvalidEnvValuesAreRejectedLoudly) {
  LogCapture capture;
  SetLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kText);
  ::setenv("P3GM_LOG_LEVEL", "verbose", 1);
  ::setenv("P3GM_LOG_FORMAT", "yaml", 1);
  InitLoggingFromEnv();
  // The current settings survive...
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  EXPECT_EQ(GetLogFormat(), LogFormat::kText);
  // ...and each bad value produced one diagnostic naming it.
  ASSERT_EQ(capture.records.size(), 2u);
  EXPECT_NE(capture.records[0].find("P3GM_LOG_LEVEL"), std::string::npos);
  EXPECT_NE(capture.records[0].find("\"verbose\""), std::string::npos);
  EXPECT_NE(capture.records[1].find("P3GM_LOG_FORMAT"), std::string::npos);
  EXPECT_NE(capture.records[1].find("\"yaml\""), std::string::npos);
}

TEST(LoggingTest, JsonRecordsCarryLevelAndMessage) {
  LogCapture capture;
  SetLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kJson);
  P3GM_LOG(Warning) << "he said \"hi\"";
  ASSERT_EQ(capture.records.size(), 1u);
  const std::string& record = capture.records[0];
  EXPECT_EQ(record.front(), '{');
  EXPECT_EQ(record.back(), '}');
  EXPECT_NE(record.find("\"level\":\"WARN\""), std::string::npos) << record;
  // The message is escaped into a valid JSON string.
  EXPECT_NE(record.find("\"msg\":\"he said \\\"hi\\\"\""),
            std::string::npos)
      << record;
  EXPECT_NE(record.find("\"ts\":\""), std::string::npos);
  EXPECT_EQ(record.find("\"trace_id\""), std::string::npos)
      << "no trace fields outside a request scope: " << record;
}

TEST(LoggingTest, RecordsInsideRequestScopeCarryTraceIds) {
  LogCapture capture;
  SetLogLevel(LogLevel::kInfo);
  const obs::TraceContext ctx = obs::MakeRootContext();

  SetLogFormat(LogFormat::kJson);
  {
    obs::RequestScope scope(ctx);
    P3GM_LOG(Info) << "inside";
  }
  SetLogFormat(LogFormat::kText);
  {
    obs::RequestScope scope(ctx);
    P3GM_LOG(Info) << "inside text";
  }
  P3GM_LOG(Info) << "outside";

  ASSERT_EQ(capture.records.size(), 3u);
  EXPECT_NE(capture.records[0].find("\"trace_id\":\"" +
                                    obs::TraceIdHex(ctx) + "\""),
            std::string::npos)
      << capture.records[0];
  EXPECT_NE(capture.records[0].find("\"span_id\":\"" +
                                    obs::SpanIdHex(ctx.span_id) + "\""),
            std::string::npos);
  EXPECT_NE(capture.records[1].find("[trace:" + obs::TraceIdHex(ctx) +
                                    " span:" + obs::SpanIdHex(ctx.span_id) +
                                    "]"),
            std::string::npos)
      << capture.records[1];
  EXPECT_EQ(capture.records[2].find("[trace:"), std::string::npos)
      << capture.records[2];
}

TEST(ParseUint64Test, AcceptsPlainDecimals) {
  std::uint64_t out = 99;
  EXPECT_TRUE(ParseUint64("0", 0, 10, &out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(ParseUint64("8080", 1, 65535, &out));
  EXPECT_EQ(out, 8080u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", 0, UINT64_MAX, &out));
  EXPECT_EQ(out, UINT64_MAX);
  EXPECT_TRUE(ParseUint64("007", 0, 10, &out));  // Leading zeros are fine.
  EXPECT_EQ(out, 7u);
}

TEST(ParseUint64Test, RejectsNonNumeric) {
  std::uint64_t out = 42;
  const char* bad[] = {"",     "abc",  "12abc", "abc12", "1.5", "1e3",
                       "-1",   "+1",   " 1",    "1 ",    "0x10"};
  for (const char* text : bad) {
    EXPECT_FALSE(ParseUint64(text, 0, UINT64_MAX, &out)) << text;
    EXPECT_EQ(out, 42u) << "*out must be untouched on failure: " << text;
  }
}

TEST(ParseUint64Test, RejectsOverflow) {
  std::uint64_t out = 42;
  // One past UINT64_MAX, and a 21-digit value.
  EXPECT_FALSE(ParseUint64("18446744073709551616", 0, UINT64_MAX, &out));
  EXPECT_FALSE(ParseUint64("999999999999999999999", 0, UINT64_MAX, &out));
  EXPECT_EQ(out, 42u);
}

TEST(ParseUint64Test, EnforcesRange) {
  std::uint64_t out = 42;
  EXPECT_FALSE(ParseUint64("0", 1, 65535, &out));      // Below min.
  EXPECT_FALSE(ParseUint64("65536", 1, 65535, &out));  // Above max.
  EXPECT_EQ(out, 42u);
  EXPECT_TRUE(ParseUint64("1", 1, 65535, &out));
  EXPECT_EQ(out, 1u);
  EXPECT_TRUE(ParseUint64("65535", 1, 65535, &out));
  EXPECT_EQ(out, 65535u);
}

}  // namespace
}  // namespace util
}  // namespace p3gm
