#include <cmath>

#include "gtest/gtest.h"
#include "linalg/eigen_sym.h"
#include "linalg/ops.h"
#include "util/rng.h"

namespace p3gm {
namespace linalg {
namespace {

Matrix RandomSymmetric(std::size_t n, util::Rng* rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = rng->Normal();
      m(j, i) = m(i, j);
    }
  }
  return m;
}

// Reconstructs V diag(d) V^T.
Matrix Reconstruct(const EigenDecomposition& e) {
  Matrix vd = e.vectors;
  for (std::size_t i = 0; i < vd.rows(); ++i) {
    for (std::size_t j = 0; j < vd.cols(); ++j) vd(i, j) *= e.values[j];
  }
  return MatmulTransB(vd, e.vectors);
}

TEST(EigenSymTest, DiagonalMatrix) {
  auto e = EigenSym(Matrix::Diagonal({3, 1, 2}));
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->values[0], 3, 1e-12);
  EXPECT_NEAR(e->values[1], 2, 1e-12);
  EXPECT_NEAR(e->values[2], 1, 1e-12);
}

TEST(EigenSymTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  auto e = EigenSym(Matrix{{2, 1}, {1, 2}});
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->values[0], 3.0, 1e-12);
  EXPECT_NEAR(e->values[1], 1.0, 1e-12);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(e->vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(EigenSymTest, RejectsNonSquare) {
  EXPECT_FALSE(EigenSym(Matrix(2, 3)).ok());
}

TEST(EigenSymTest, HandlesSizeOneAndZero) {
  auto e1 = EigenSym(Matrix{{5}});
  ASSERT_TRUE(e1.ok());
  EXPECT_DOUBLE_EQ(e1->values[0], 5.0);
  auto e0 = EigenSym(Matrix());
  ASSERT_TRUE(e0.ok());
  EXPECT_TRUE(e0->values.empty());
}

class EigenSymSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSymSizeTest, ReconstructsInput) {
  util::Rng rng(100 + GetParam());
  Matrix a = RandomSymmetric(GetParam(), &rng);
  auto e = EigenSym(a);
  ASSERT_TRUE(e.ok());
  EXPECT_LT(MaxAbsDiff(Reconstruct(*e), a), 1e-9);
}

TEST_P(EigenSymSizeTest, VectorsAreOrthonormal) {
  util::Rng rng(200 + GetParam());
  Matrix a = RandomSymmetric(GetParam(), &rng);
  auto e = EigenSym(a);
  ASSERT_TRUE(e.ok());
  Matrix gram = MatmulTransA(e->vectors, e->vectors);
  EXPECT_LT(MaxAbsDiff(gram, Matrix::Identity(GetParam())), 1e-10);
}

TEST_P(EigenSymSizeTest, ValuesSortedDescending) {
  util::Rng rng(300 + GetParam());
  auto e = EigenSym(RandomSymmetric(GetParam(), &rng));
  ASSERT_TRUE(e.ok());
  for (std::size_t i = 1; i < e->values.size(); ++i) {
    EXPECT_GE(e->values[i - 1], e->values[i]);
  }
}

TEST_P(EigenSymSizeTest, TraceEqualsEigenvalueSum) {
  util::Rng rng(400 + GetParam());
  Matrix a = RandomSymmetric(GetParam(), &rng);
  auto e = EigenSym(a);
  ASSERT_TRUE(e.ok());
  double trace = 0, sum = 0;
  for (std::size_t i = 0; i < GetParam(); ++i) trace += a(i, i);
  for (double v : e->values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSymSizeTest,
                         ::testing::Values(2, 3, 5, 10, 25, 60));

TEST(TopKEigenSymTest, MatchesDenseOnLeadingPairs) {
  util::Rng rng(19);
  Matrix b(30, 8);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Normal();
  Matrix a = MatmulTransB(b, b);  // PSD, rank 8... actually rank <= 8.
  auto dense = EigenSym(a);
  auto topk = TopKEigenSym(a, 3, 400, 7);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(topk.ok());
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(topk->values[j], dense->values[j],
                1e-6 * std::max(1.0, dense->values[j]));
    // Eigenvector agreement up to sign: |<v_dense, v_topk>| ~ 1.
    double dot = 0;
    for (std::size_t i = 0; i < 30; ++i) {
      dot += dense->vectors(i, j) * topk->vectors(i, j);
    }
    EXPECT_NEAR(std::fabs(dot), 1.0, 1e-4);
  }
}

TEST(TopKEigenSymTest, RejectsKTooLarge) {
  EXPECT_FALSE(TopKEigenSym(Matrix::Identity(3), 4).ok());
}

TEST(TopKEigenSymTest, HandlesZeroMatrix) {
  auto e = TopKEigenSym(Matrix(4, 4), 2);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->values[0], 0.0, 1e-12);
}

}  // namespace
}  // namespace linalg
}  // namespace p3gm
