// Concurrency stress for the serve daemon: many client threads firing
// mixed-size sample requests while hot-reloads run mid-flight. Every
// response must be well-formed (no torn bodies), every 200 must have
// exactly the requested shape, and the obs counters must add up. The
// `threads` label puts this suite in the TSan configuration
// (-DP3GM_SANITIZE=thread), where the event loop / batcher / reload
// interleavings are checked for data races.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/observability.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace p3gm {
namespace serve {
namespace {

using serve_test::MakePackage;
using serve_test::TempDir;

TEST(ServeStress, ConcurrentClientsWithHotReload) {
  obs::SetEnabled(true);
  obs::Registry::Global().Reset();
  TempDir dir;
  const std::string path = dir.WritePackage(MakePackage("alpha"), "alpha");

  ServerOptions options;
  options.port = 0;
  options.max_batch = 8;
  options.cache_entries = 4;
  Server server(options);
  ASSERT_TRUE(server.Init({path}).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 30;
  std::atomic<int> ok_responses{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        // Mixed sizes (1..24 rows); every 5th request is seeded, every
        // 7th asks for fresh rows.
        const int n = 1 + (c * 7 + r * 3) % 24;
        std::string body = "{\"model\": \"alpha\", \"n\": " +
                           std::to_string(n);
        if (r % 5 == 0) body += ", \"seed\": " + std::to_string(100 + r);
        if (r % 7 == 0) body += ", \"fresh\": true";
        body += "}";
        auto response = client.Post("/v1/sample", body);
        if (!response.ok()) {
          failures.fetch_add(1);
          // The connection may be gone; reconnect for the next round.
          if (!client.Connect("127.0.0.1", server.port()).ok()) return;
          continue;
        }
        if (response->status == 503) {
          overloaded.fetch_add(1);
          continue;
        }
        if (response->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        // A torn or interleaved response would fail JSON parsing or the
        // shape check here.
        obs::json::Value parsed;
        std::string error;
        if (!obs::json::Parse(response->body, &parsed, &error)) {
          ADD_FAILURE() << "unparseable response: " << error;
          failures.fetch_add(1);
          continue;
        }
        const obs::json::Value* rows = parsed.Find("rows");
        const obs::json::Value* labels = parsed.Find("labels");
        if (rows == nullptr || labels == nullptr ||
            rows->items.size() != static_cast<std::size_t>(n) ||
            labels->items.size() != static_cast<std::size_t>(n)) {
          ADD_FAILURE() << "torn response shape for n=" << n;
          failures.fetch_add(1);
          continue;
        }
        for (const obs::json::Value& row : rows->items) {
          if (row.items.size() != 4u) {
            ADD_FAILURE() << "torn row width";
            failures.fetch_add(1);
            break;
          }
        }
        ok_responses.fetch_add(1);
      }
    });
  }

  // Hot-reload repeatedly while the clients hammer the daemon.
  std::atomic<bool> stop_reloader{false};
  std::thread reloader([&] {
    HttpClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return;
    while (!stop_reloader.load(std::memory_order_acquire)) {
      auto response = client.Post("/v1/reload", "");
      if (!response.ok()) {
        if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      }
    }
  });

  for (std::thread& t : clients) t.join();
  stop_reloader.store(true, std::memory_order_release);
  reloader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(ok_responses.load(), 0);
  // With queue_limit=256 and 8 clients, overload should be rare-to-zero;
  // what matters is that every request got *some* well-formed answer.
  EXPECT_EQ(ok_responses.load() + overloaded.load(),
            kClients * kRequestsPerClient);

#if P3GM_OBSERVABILITY_ENABLED
  // Counters are monotonic and consistent: 2xx responses >= sample
  // successes, requests_total covers everything we sent. (With the obs
  // layer compiled out the registry is inert and there is nothing to
  // check.)
  const obs::Snapshot snapshot = obs::Registry::Global().TakeSnapshot();
  std::uint64_t requests_total = 0, ok2xx = 0, sample_requests = 0;
  for (const obs::CounterSample& c : snapshot.counters) {
    if (c.name == "serve.requests_total") requests_total = c.value;
    if (c.name == "serve.responses.2xx") ok2xx = c.value;
    if (c.name == "serve.sample.requests") sample_requests = c.value;
  }
  EXPECT_GE(sample_requests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_GE(requests_total, sample_requests);
  EXPECT_GE(ok2xx, static_cast<std::uint64_t>(ok_responses.load()));
#endif

  server.Stop();
  // Generation advanced: the reloader actually reloaded mid-flight.
  EXPECT_GT(server.registry().generation(), 1u);
}

TEST(ServeStress, ManyConnectionsOpenAndClose) {
  obs::SetEnabled(true);
  TempDir dir;
  const std::string path = dir.WritePackage(MakePackage("alpha"), "alpha");
  ServerOptions options;
  options.port = 0;
  Server server(options);
  ASSERT_TRUE(server.Init({path}).ok());
  ASSERT_TRUE(server.Start().ok());

  // Serial open/use/close churn across threads; exercises accept/close
  // bookkeeping under concurrency.
  constexpr int kThreads = 4;
  constexpr int kConnectionsPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kConnectionsPerThread; ++i) {
        auto response = FetchOnce("127.0.0.1", server.port(), "GET",
                                  "/healthz");
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace p3gm
