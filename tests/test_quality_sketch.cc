// Streaming-sketch suite for the synthesis-quality monitor
// (obs/quality/sketch.h): exactness against sorted arrays while below
// the compaction threshold, bounded rank error beyond it, mergeability,
// fixed-memory bounds, and deterministic merged results under eight
// concurrent writers (the `threads` label — run under TSan to pin the
// per-thread slot sharding).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "linalg/matrix.h"
#include "obs/quality/fingerprint.h"
#include "obs/quality/monitor.h"
#include "obs/quality/sketch.h"

namespace p3gm {
namespace obs {
namespace quality {
namespace {

// Deterministic uniform-ish stream in [0, 1): a full-period LCG keeps
// the tests free of util::Rng so sketch behavior is pinned against a
// fixed input sequence.
std::vector<double> UniformStream(std::size_t n, std::uint64_t seed) {
  std::vector<double> values(n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    values[i] = static_cast<double>(state >> 11) /
                static_cast<double>(1ULL << 53);
  }
  return values;
}

// ------------------------------------------------------------ moments

TEST(MomentsSketch, MatchesDirectComputation) {
  const std::vector<double> values = UniformStream(257, 1);
  MomentsSketch sketch;
  double sum = 0.0;
  for (double v : values) {
    sketch.Add(v);
    sum += v;
  }
  const double mean = sum / static_cast<double>(values.size());
  double m2 = 0.0;
  for (double v : values) m2 += (v - mean) * (v - mean);

  EXPECT_EQ(sketch.count(), values.size());
  EXPECT_NEAR(sketch.mean(), mean, 1e-12);
  EXPECT_NEAR(sketch.variance(), m2 / static_cast<double>(values.size()),
              1e-12);
  EXPECT_EQ(sketch.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(sketch.max(), *std::max_element(values.begin(), values.end()));
}

TEST(MomentsSketch, MergeEqualsConcatenation) {
  const std::vector<double> values = UniformStream(400, 2);
  MomentsSketch whole, left, right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.Add(values[i]);
    (i < 150 ? left : right).Add(values[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(MomentsSketch, EmptySidesMerge) {
  MomentsSketch empty, other;
  other.Add(3.0);
  MomentsSketch a = empty;
  a.Merge(other);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.mean(), 3.0);
  other.Merge(empty);
  EXPECT_EQ(other.count(), 1u);
}

// ----------------------------------------------------------- quantile

TEST(QuantileSketch, ExactWhileBelowCapacity) {
  // Compaction triggers on the k-th Add, so n = k - 1 keeps every value
  // retained at weight 1 and all rank queries exact.
  const std::size_t k = 64;
  std::vector<double> values = UniformStream(k - 1, 3);
  QuantileSketch sketch(k);
  for (double v : values) sketch.Add(v);
  std::sort(values.begin(), values.end());
  for (std::size_t i = 0; i <= 32; ++i) {
    const double q = static_cast<double>(i) / 32.0;
    EXPECT_EQ(sketch.Quantile(q), ExactQuantileSorted(values, q))
        << "q=" << q;
  }
}

TEST(QuantileSketch, BoundedRankErrorAfterCompaction) {
  const std::size_t n = 20000;
  const std::vector<double> values = UniformStream(n, 4);
  QuantileSketch sketch(64);
  for (double v : values) sketch.Add(v);
  EXPECT_EQ(sketch.count(), n);
  // The stream is uniform on [0, 1): F(x) ~ x, and the deterministic
  // compactor's rank error at k = 64 stays well inside 5%.
  for (double x = 0.05; x < 1.0; x += 0.05) {
    EXPECT_NEAR(sketch.Cdf(x), x, 0.05) << "x=" << x;
  }
  for (double q = 0.1; q < 1.0; q += 0.1) {
    EXPECT_NEAR(sketch.Quantile(q), q, 0.05) << "q=" << q;
  }
}

TEST(QuantileSketch, DeterministicForIdenticalStreams) {
  const std::vector<double> values = UniformStream(5000, 5);
  QuantileSketch a(64), b(64);
  for (double v : values) {
    a.Add(v);
    b.Add(v);
  }
  for (std::size_t i = 0; i <= 32; ++i) {
    const double q = static_cast<double>(i) / 32.0;
    EXPECT_EQ(a.Quantile(q), b.Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeCoversConcatenatedStream) {
  const std::vector<double> values = UniformStream(8000, 6);
  QuantileSketch merged(64);
  std::vector<QuantileSketch> parts(4, QuantileSketch(64));
  for (std::size_t i = 0; i < values.size(); ++i) {
    parts[i % parts.size()].Add(values[i]);
  }
  for (const QuantileSketch& part : parts) merged.Merge(part);
  EXPECT_EQ(merged.count(), values.size());
  for (double q = 0.1; q < 1.0; q += 0.1) {
    EXPECT_NEAR(merged.Quantile(q), q, 0.06) << "q=" << q;
  }
}

TEST(QuantileSketch, MemoryBoundedIndependentOfStreamLength) {
  QuantileSketch sketch(64);
  const std::vector<double> values = UniformStream(200000, 7);
  for (double v : values) sketch.Add(v);
  // ~log2(n/k) levels of <= k doubles each plus slack: far below the
  // raw stream (1.6 MB).
  EXPECT_LT(sketch.MemoryBytes(), static_cast<std::size_t>(64 * 1024));
}

// -------------------------------------------------------- categorical

TEST(CategoricalSketch, CountsAndTotalVariation) {
  CategoricalSketch sketch(3);
  for (int i = 0; i < 50; ++i) sketch.Add(0);
  for (int i = 0; i < 30; ++i) sketch.Add(1);
  for (int i = 0; i < 20; ++i) sketch.Add(2);
  EXPECT_EQ(sketch.count(), 100u);
  EXPECT_EQ(sketch.bin_count(0), 50u);
  EXPECT_EQ(sketch.overflow(), 0u);
  // TV against itself is zero; against a point mass it is the moved mass.
  EXPECT_NEAR(sketch.TotalVariation({0.5, 0.3, 0.2}), 0.0, 1e-12);
  EXPECT_NEAR(sketch.TotalVariation({1.0, 0.0, 0.0}), 0.5, 1e-12);
}

TEST(CategoricalSketch, OverflowCountsAsUnmatchedMass) {
  CategoricalSketch sketch(2);
  for (int i = 0; i < 50; ++i) sketch.Add(0);
  for (int i = 0; i < 50; ++i) sketch.Add(7);  // Out of range.
  EXPECT_EQ(sketch.overflow(), 50u);
  // Live: 0.5 in bin 0, 0.5 overflowed. Reference: all mass in bin 0.
  // L1 = |0.5-1.0| + 0 + overflow 0.5 = 1.0 -> TV 0.5.
  EXPECT_NEAR(sketch.TotalVariation({1.0, 0.0}), 0.5, 1e-12);
}

TEST(CategoricalSketch, MergeAddsCounts) {
  CategoricalSketch a(2), b(2);
  a.Add(0);
  b.Add(1);
  b.Add(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bin_count(0), 1u);
  EXPECT_EQ(a.bin_count(1), 1u);
  EXPECT_EQ(a.overflow(), 1u);
}

// ---------------------------------------------- concurrent writers

// Eight threads fold the same decoded matrix into one monitor (each
// thread lands in its own per-thread slot). The merged score must be
// deterministic across identical runs and the fold counts exact. Run
// under -DP3GM_SANITIZE=thread, this also pins the slot sharding as
// data-race free.
TEST(QualityMonitorThreads, EightConcurrentWritersDeterministic) {
  const std::size_t rows = 300, dim = 4;
  linalg::Matrix data(rows, dim);
  const std::vector<double> stream = UniformStream(rows * dim, 8);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < dim; ++c) data(r, c) = stream[r * dim + c];
  }
  const linalg::Matrix reference = data;
  auto fingerprint = std::make_shared<const Fingerprint>(
      Fingerprint::FromDecoded(reference, /*num_classes=*/0, /*seed=*/1));

  auto run_once = [&]() {
    MonitorOptions options;
    options.stride = 1;
    QualityMonitor monitor(fingerprint, dim, /*num_classes=*/0, options);
    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t) {
      writers.emplace_back([&monitor, &data] {
        for (int rep = 0; rep < 4; ++rep) monitor.ObserveDecoded(data);
      });
    }
    for (std::thread& w : writers) w.join();
    return monitor.Score();
  };

  const DriftReport first = run_once();
  const DriftReport second = run_once();
  EXPECT_EQ(first.rows_observed, rows * 8 * 4);
  EXPECT_EQ(first.rows_seen, rows * 8 * 4);
  EXPECT_EQ(second.rows_observed, first.rows_observed);
  ASSERT_EQ(first.features.size(), dim);
  for (std::size_t c = 0; c < dim; ++c) {
    // Every writer folded identical data, so the merged sketches — and
    // the drift they score — are a pure function of the input, not of
    // thread scheduling.
    EXPECT_NEAR(second.features[c].ks, first.features[c].ks, 1e-12);
    EXPECT_NEAR(second.features[c].live_mean, first.features[c].live_mean,
                1e-9);
  }
  // The live stream IS the reference draw, so drift stays near zero.
  EXPECT_LT(first.worst_ks, 0.08);
}

}  // namespace
}  // namespace quality
}  // namespace obs
}  // namespace p3gm
