// Observability subsystem tests: metrics registry semantics, trace span
// nesting and chrome://tracing export well-formedness, privacy-ledger
// monotonicity and exact agreement with the RDP accountant, and a
// threaded-writers stress. The obs globals (enabled flag, registry,
// recorder, ledger) are process-wide, so every test runs through the
// fixture below, which restores a clean disabled state.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "dp/accountant.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/ledger.h"
#include "obs/observability.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace p3gm {
namespace obs {
namespace {

// Minimal structural JSON check: balanced braces/brackets outside string
// literals, terminated strings, valid escapes. Not a full parser, but it
// catches the classic export bugs (trailing commas are legal to it, but
// unbalanced nesting and unterminated strings are not).
bool JsonBalanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Global().Reset();
    TraceRecorder::Global().Clear();
    PrivacyLedger::Global().Clear();
    PrivacyLedger::Global().SetDelta(1e-5);
  }
  void TearDown() override {
    Registry::Global().Reset();
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().SetCapacityPerThread(1 << 20);
    PrivacyLedger::Global().Clear();
    SetEnabled(false);
  }
};

// ----------------------------------------------------------- registry

#if P3GM_OBSERVABILITY_ENABLED

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  Counter* c = Registry::Global().counter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST_F(ObsTest, GaugeKeepsLastWrite) {
  Gauge* g = Registry::Global().gauge("test.gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->value(), -2.25);
}

TEST_F(ObsTest, HistogramBucketizesOnUpperBounds) {
  // Bucket i counts v <= bounds[i]; one implicit overflow bucket.
  Histogram* h =
      Registry::Global().histogram("test.hist", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h->Observe(v);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 106.0);
  const std::vector<std::uint64_t> want = {2, 1, 1, 1};
  EXPECT_EQ(h->bucket_counts(), want);
}

TEST_F(ObsTest, HistogramQuantileInterpolatesExactly) {
  // bounds {1,2,4} with observations {0.5, 1.0, 1.5, 3.0, 100.0}:
  // buckets hold {2, 1, 1} plus 1 in overflow (count 5).
  HistogramSample s;
  s.bounds = {1.0, 2.0, 4.0};
  s.bucket_counts = {2, 1, 1, 1};
  s.count = 5;
  s.sum = 106.0;
  // q=0.5 -> rank 2.5 lands 0.5 into the (1, 2] bucket.
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 1.5);
  // q=0.2 -> rank 1.0, halfway through the first bucket whose lower
  // edge is min(0, bounds[0]) = 0.
  EXPECT_DOUBLE_EQ(s.Quantile(0.2), 0.5);
  // q=0 pins to the first bucket's lower edge.
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.0);
  // q=1 -> rank 5 falls in the overflow bucket, which clamps to the
  // largest finite bound.
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 4.0);
  // q is clamped into [0, 1].
  EXPECT_DOUBLE_EQ(s.Quantile(-3.0), s.Quantile(0.0));
  EXPECT_DOUBLE_EQ(s.Quantile(7.0), s.Quantile(1.0));
}

TEST_F(ObsTest, HistogramQuantileNegativeLowerEdge) {
  // All-negative bounds: the first bucket's lower edge is
  // min(0, bounds[0]) = bounds[0], so that bucket degenerates to the
  // point -2 (the Prometheus convention — no fabricated range below the
  // smallest bound). The second bucket interpolates normally.
  HistogramSample s;
  s.bounds = {-2.0, -1.0};
  s.bucket_counts = {2, 2, 0};
  s.count = 4;
  // rank 1 lands in the first (point) bucket.
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), -2.0);
  // rank 3 is halfway into the (-2, -1] bucket.
  EXPECT_DOUBLE_EQ(s.Quantile(0.75), -1.5);
  // rank 4 exhausts the second bucket: its upper edge.
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), -1.0);
}

TEST_F(ObsTest, HistogramQuantileEmptyAndMalformedAreNaN) {
  HistogramSample s;  // No bounds, no counts.
  EXPECT_TRUE(std::isnan(s.Quantile(0.5)));
  s.bounds = {1.0};
  s.bucket_counts = {0, 0};
  s.count = 0;  // Empty histogram.
  EXPECT_TRUE(std::isnan(s.Quantile(0.5)));
  s.count = 3;  // Size mismatch: counts must be bounds.size() + 1.
  s.bucket_counts = {3};
  EXPECT_TRUE(std::isnan(s.Quantile(0.5)));
}

TEST_F(ObsTest, LiveHistogramSnapshotQuantileMatchesHandComputed) {
  Histogram* h =
      Registry::Global().histogram("test.quantile.hist", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h->Observe(v);
  const Snapshot snap = Registry::Global().TakeSnapshot();
  const HistogramSample* s = nullptr;
  for (const auto& hs : snap.histograms) {
    if (hs.name == "test.quantile.hist") s = &hs;
  }
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(s->Quantile(1.0), 4.0);
}

TEST_F(ObsTest, DisabledUpdatesAreNoOps) {
  Counter* c = Registry::Global().counter("test.disabled.counter");
  Gauge* g = Registry::Global().gauge("test.disabled.gauge");
  Histogram* h = Registry::Global().histogram("test.disabled.hist", {1.0});
  SetEnabled(false);
  c->Add(7);
  g->Set(3.0);
  h->Observe(0.5);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
}

TEST_F(ObsTest, LookupIsStableAndResetPreservesPointers) {
  Registry& registry = Registry::Global();
  Counter* c = registry.counter("test.stable");
  c->Add(3);
  // Same name must resolve to the same instrument (call sites cache the
  // pointer in a function-local static).
  EXPECT_EQ(registry.counter("test.stable"), c);
  registry.Reset();
  EXPECT_EQ(registry.counter("test.stable"), c);
  c->Add();  // The cached pointer stays usable after Reset.
  EXPECT_EQ(c->value(), 1u);
}

TEST_F(ObsTest, SnapshotIsSortedAndExportsAreWellFormed) {
  Registry& registry = Registry::Global();
  registry.counter("b.counter")->Add(2);
  registry.counter("a.counter")->Add(1);
  registry.gauge("z.gauge")->Set(0.5);
  registry.histogram("m.hist", {1.0, 2.0})->Observe(1.5);

  const Snapshot snap = registry.TakeSnapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }

  const std::string json = snap.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"a.counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b.counter\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"m.hist\""), std::string::npos);

  const std::string csv = snap.ToCsv();
  EXPECT_EQ(csv.rfind("kind,name,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,a.counter,value,1"), std::string::npos);
  // Histogram rows: count, sum, one le_* row per bucket + overflow.
  EXPECT_NE(csv.find("histogram,m.hist,count,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,m.hist,le_inf,0"), std::string::npos);
}

// -------------------------------------------------------------- spans

TEST_F(ObsTest, SpansNestAndRecordOrderedIntervals) {
  std::uint64_t mid_ns = 0;
  {
    P3GM_TRACE_SPAN("test.outer");
    {
      P3GM_TRACE_SPAN("test.inner");
      mid_ns = NowNs();
    }
  }
  const auto events = TraceRecorder::Global().Events();
  const TraceRecorder::Event* outer = nullptr;
  const TraceRecorder::Event* inner = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "test.outer") outer = &e;
    if (std::string(e.name) == "test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner interval is contained in the outer one, both on the same
  // thread, and both bracket the timestamp taken inside.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->start_ns, inner->start_ns);
  EXPECT_LE(inner->end_ns, outer->end_ns);
  EXPECT_LE(inner->start_ns, mid_ns);
  EXPECT_LE(mid_ns, inner->end_ns);
}

TEST_F(ObsTest, ChromeJsonIsWellFormed) {
  for (int i = 0; i < 3; ++i) {
    P3GM_TRACE_SPAN("test.span");
  }
  const TraceRecorder& recorder = TraceRecorder::Global();
  EXPECT_EQ(recorder.EventCount(), 3u);
  const std::string json = recorder.ToChromeJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // One complete ("X") event per recorded span.
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"X\""), 3u);
}

TEST_F(ObsTest, ChromeJsonEscapesHostileSpanNames) {
  // A span name containing quotes, backslashes and a newline must not
  // break the trace JSON: chrome://tracing rejects the whole file on a
  // single malformed string.
  {
    P3GM_TRACE_SPAN("test.\"quoted\"\\back\nslash");
  }
  const std::string out = TraceRecorder::Global().ToChromeJson();
  // The raw bytes must carry the escape sequences...
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos) << out;
  EXPECT_NE(out.find("\\\\back"), std::string::npos) << out;
  EXPECT_NE(out.find("\\n"), std::string::npos) << out;
  // ...and a strict JSON parse must round-trip the original name.
  json::Value root;
  std::string error;
  ASSERT_TRUE(json::Parse(out, &root, &error)) << error;
  const json::Value* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const auto& e : events->items) {
    if (e.StringOr("name", "") == "test.\"quoted\"\\back\nslash") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << out;
}

TEST_F(ObsTest, RegistryJsonEscapesHostileInstrumentNames) {
  Registry& registry = Registry::Global();
  registry.counter("test.\"evil\"\\name")->Add(3);
  const std::string out = registry.TakeSnapshot().ToJson();
  json::Value root;
  std::string error;
  ASSERT_TRUE(json::Parse(out, &root, &error)) << error;
  const json::Value* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->NumberOr("test.\"evil\"\\name", -1.0), 3.0);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  SetEnabled(false);
  {
    P3GM_TRACE_SPAN("test.ghost");
  }
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 0u);
}

TEST_F(ObsTest, CapacityBoundsBufferAndCountsDrops) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetCapacityPerThread(4);
  for (int i = 0; i < 10; ++i) {
    P3GM_TRACE_SPAN("test.capped");
  }
  EXPECT_EQ(recorder.EventCount(), 4u);
  EXPECT_EQ(recorder.DroppedCount(), 6u);
  recorder.Clear();
  EXPECT_EQ(recorder.DroppedCount(), 0u);
}

// ------------------------------------------------------------- ledger

TEST_F(ObsTest, PhaseScopeNestsWithInnerWinning) {
  EXPECT_STREQ(PhaseScope::Current(), "");
  {
    PhaseScope outer("dp_pca");
    EXPECT_STREQ(PhaseScope::Current(), "dp_pca");
    {
      PhaseScope inner("dp_em");
      EXPECT_STREQ(PhaseScope::Current(), "dp_em");
    }
    EXPECT_STREQ(PhaseScope::Current(), "dp_pca");
  }
  EXPECT_STREQ(PhaseScope::Current(), "");
}

TEST_F(ObsTest, LedgerTracksP3gmCompositionExactly) {
  // The full P3GM composition (Theorem 4) recorded entry by entry:
  // Wishart DP-PCA, 20 DP-EM iterations, 1000 per-step DP-SGD events.
  dp::P3gmPrivacyParams params;
  params.pca_epsilon = 0.1;
  params.em_sigma = 100.0;
  params.em_iters = 20;
  params.mog_components = 3;
  params.sgd_sigma = 2.0;
  params.sgd_sampling_rate = 0.01;
  params.sgd_steps = 1000;

  dp::RdpAccountant acc;
  acc.set_ledger_enabled(true);
  {
    PhaseScope phase("dp_pca");
    acc.AddPureDp(params.pca_epsilon, "wishart");
  }
  {
    PhaseScope phase("dp_em");
    for (std::size_t i = 0; i < params.em_iters; ++i) {
      acc.AddDpEm(params.em_sigma, params.mog_components, 1);
    }
  }
  {
    PhaseScope phase("dp_sgd");
    const std::vector<double> curve = acc.SampledGaussianCurve(
        params.sgd_sampling_rate, params.sgd_sigma);
    dp::MechanismEvent event;
    event.mechanism = "sampled_gaussian";
    event.sigma = params.sgd_sigma;
    event.sampling_rate = params.sgd_sampling_rate;
    for (std::size_t step = 0; step < params.sgd_steps; ++step) {
      acc.AddEvent(event, curve);
    }
  }

  const PrivacyLedger& ledger = PrivacyLedger::Global();
  const auto entries = ledger.Entries();
  ASSERT_EQ(entries.size(), 1u + params.em_iters + params.sgd_steps);

  // Epsilon is monotone non-decreasing along the composition, and every
  // entry carries the phase it was recorded under plus this run's id.
  double prev = 0.0;
  for (const auto& e : entries) {
    EXPECT_GE(e.cumulative_epsilon, prev);
    prev = e.cumulative_epsilon;
    EXPECT_EQ(e.run, acc.run_id());
    EXPECT_DOUBLE_EQ(e.delta, 1e-5);
  }
  EXPECT_EQ(entries[0].phase, "dp_pca");
  EXPECT_EQ(entries[0].mechanism, "wishart");
  EXPECT_EQ(entries[1].phase, "dp_em");
  EXPECT_EQ(entries.back().phase, "dp_sgd");
  EXPECT_EQ(entries.back().mechanism, "sampled_gaussian");

  // The final cumulative epsilon agrees with the one-shot accounting of
  // the same composition to well under the 1e-9 acceptance tolerance.
  const double want = dp::ComputeP3gmEpsilonRdp(params, 1e-5).epsilon;
  EXPECT_NEAR(ledger.CumulativeEpsilon(), want, 1e-9);
  EXPECT_NEAR(ledger.CumulativeEpsilon(), acc.GetEpsilon(1e-5).epsilon,
              1e-12);
}

TEST_F(ObsTest, AccountantsAreSilentWithoutOptIn) {
  // Throwaway accountants (sigma calibration) must not spam the ledger.
  dp::RdpAccountant acc;
  acc.AddGaussian(2.0, 5);
  acc.AddPureDp(0.1);
  EXPECT_EQ(PrivacyLedger::Global().size(), 0u);
  // And an opted-in accountant stays silent while obs is disabled.
  SetEnabled(false);
  dp::RdpAccountant opted;
  opted.set_ledger_enabled(true);
  opted.AddGaussian(2.0, 5);
  EXPECT_EQ(PrivacyLedger::Global().size(), 0u);
}

TEST_F(ObsTest, DistinctRunsGetDistinctIds) {
  dp::RdpAccountant a, b;
  a.set_ledger_enabled(true);
  b.set_ledger_enabled(true);
  EXPECT_NE(a.run_id(), b.run_id());
  a.AddGaussian(2.0, 1);
  b.AddGaussian(2.0, 1);
  const auto entries = PrivacyLedger::Global().Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].run, a.run_id());
  EXPECT_EQ(entries[1].run, b.run_id());
}

TEST_F(ObsTest, LedgerExportsAreWellFormed) {
  dp::RdpAccountant acc;
  acc.set_ledger_enabled(true);
  acc.AddPureDp(0.1, "wishart");
  acc.AddSampledGaussian(0.01, 1.5, 10);
  const PrivacyLedger& ledger = PrivacyLedger::Global();

  const std::string json = ledger.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"wishart\""), std::string::npos);
  EXPECT_NE(json.find("\"sampled_gaussian\""), std::string::npos);
  EXPECT_NE(json.find("\"rdp_orders\""), std::string::npos);

  const std::string csv = ledger.ToCsv();
  EXPECT_EQ(csv.rfind("index,run,phase,mechanism,count,sigma,sampling_rate,"
                      "pure_eps,cumulative_epsilon,best_order,delta\n",
                      0),
            0u);
  EXPECT_EQ(CountOccurrences(csv, "\n"), 1u + ledger.size());
}

// ------------------------------------------------------------- stress

TEST_F(ObsTest, ThreadedWritersProduceExactTotals) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  constexpr std::size_t kSpansPerThread = 50;
  Registry& registry = Registry::Global();
  Counter* counter = registry.counter("stress.counter");
  Histogram* hist = registry.histogram("stress.hist", {0.25, 0.5, 0.75});
  dp::RdpAccountant acc;
  acc.set_ledger_enabled(true);
  const std::vector<double> curve = acc.GaussianCurve(4.0);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        counter->Add();
        hist->Observe(static_cast<double>((t + i) % 4) * 0.25);
      }
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        P3GM_TRACE_SPAN("stress.span");
      }
      dp::MechanismEvent event;
      event.mechanism = "gaussian";
      event.sigma = 4.0;
      acc.AddEvent(event, curve);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(hist->count(), kThreads * kPerThread);
  // Each residue class 0..3 appears kPerThread/4 times per thread.
  // Values 0.0 and 0.25 both fall in the first bucket (v <= 0.25), 0.5
  // and 0.75 land on their own bounds, and nothing overflows.
  const std::size_t per_class = kThreads * kPerThread / 4;
  const std::vector<std::uint64_t> want = {2 * per_class, per_class,
                                           per_class, 0};
  EXPECT_EQ(hist->bucket_counts(), want);
  EXPECT_EQ(TraceRecorder::Global().EventCount(),
            kThreads * kSpansPerThread);
  EXPECT_EQ(TraceRecorder::Global().DroppedCount(), 0u);
  EXPECT_EQ(PrivacyLedger::Global().size(), kThreads);
  // All 8 concurrent events composed: cumulative epsilon of the last
  // entry equals the accountant's final guarantee.
  EXPECT_NEAR(PrivacyLedger::Global().CumulativeEpsilon(),
              acc.GetEpsilon(1e-5).epsilon, 1e-12);
}

#else  // !P3GM_OBSERVABILITY_ENABLED

// With the layer compiled out (-DP3GM_OBSERVABILITY=OFF) every switch is
// inert and every instrument stays at zero — the zero-overhead contract.
TEST_F(ObsTest, CompiledOutLayerIsInert) {
  EXPECT_FALSE(kCompiledIn);
  SetEnabled(true);
  EXPECT_FALSE(Enabled());
  Counter* c = Registry::Global().counter("test.off");
  c->Add(5);
  EXPECT_EQ(c->value(), 0u);
  {
    P3GM_TRACE_SPAN("test.off.span");
  }
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 0u);
  dp::RdpAccountant acc;
  acc.set_ledger_enabled(true);
  acc.AddGaussian(2.0, 3);
  EXPECT_EQ(PrivacyLedger::Global().size(), 0u);
  // Accounting itself is unaffected by the missing telemetry.
  EXPECT_GT(acc.GetEpsilon(1e-5).epsilon, 0.0);
}

#endif  // P3GM_OBSERVABILITY_ENABLED

// ------------------------------------------------------ trace context
// Request identity is protocol-level plumbing: everything below works
// identically in ON and OFF builds (only span *recording* compiles out).

TEST(TraceContextTest, RootContextsAreValidAndDistinct) {
  const TraceContext a = MakeRootContext();
  const TraceContext b = MakeRootContext();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(a.parent_span_id, 0u);
  EXPECT_FALSE(a.trace_hi == b.trace_hi && a.trace_lo == b.trace_lo);
  EXPECT_NE(a.span_id, b.span_id);
}

TEST(TraceContextTest, ChildKeepsTraceIdAndParentsOnTheSpan) {
  const TraceContext parent = MakeRootContext();
  const TraceContext child = ChildOf(parent);
  EXPECT_EQ(child.trace_hi, parent.trace_hi);
  EXPECT_EQ(child.trace_lo, parent.trace_lo);
  EXPECT_EQ(child.parent_span_id, parent.span_id);
  EXPECT_NE(child.span_id, parent.span_id);
  EXPECT_NE(child.span_id, 0u);
  // An invalid parent degrades to a fresh root.
  const TraceContext orphan = ChildOf(TraceContext{});
  EXPECT_TRUE(orphan.valid());
  EXPECT_EQ(orphan.parent_span_id, 0u);
}

TEST(TraceContextTest, NextSpanIdIsNonzeroAndDistinct) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = NextSpanId();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceContextTest, FormatAndHexFormsAreExact) {
  TraceContext ctx;
  ctx.trace_hi = 0x0123456789abcdefULL;
  ctx.trace_lo = 0xfedcba9876543210ULL;
  ctx.span_id = 0x00000000000000aaULL;
  EXPECT_EQ(FormatTraceparent(ctx),
            "00-0123456789abcdeffedcba9876543210-00000000000000aa-01");
  EXPECT_EQ(TraceIdHex(ctx), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(SpanIdHex(ctx.span_id), "00000000000000aa");
}

TEST(TraceContextTest, ParseAdoptsTraceIdMintsLocalSpan) {
  TraceContext ctx;
  ASSERT_TRUE(ParseTraceparent(
      "00-0123456789abcdeffedcba9876543210-00000000000000aa-01", &ctx));
  EXPECT_EQ(ctx.trace_hi, 0x0123456789abcdefULL);
  EXPECT_EQ(ctx.trace_lo, 0xfedcba9876543210ULL);
  // The header's parent-id becomes our parent; our span id is fresh.
  EXPECT_EQ(ctx.parent_span_id, 0xaaULL);
  EXPECT_NE(ctx.span_id, 0u);
  EXPECT_NE(ctx.span_id, 0xaaULL);
}

TEST(TraceContextTest, ParseToleratesFutureVersions) {
  // Per the W3C spec, an unknown (non-ff) version with the same prefix
  // layout parses; trailing fields are ignored.
  TraceContext ctx;
  EXPECT_TRUE(ParseTraceparent(
      "01-0123456789abcdeffedcba9876543210-00000000000000aa-01-extra",
      &ctx));
  EXPECT_EQ(ctx.trace_lo, 0xfedcba9876543210ULL);
}

TEST(TraceContextTest, ParseRejectsMalformedAndLeavesOutUntouched) {
  const char* bad[] = {
      "",
      "00",
      "00-0123456789abcdeffedcba9876543210-00000000000000aa",  // Short.
      "00-0123456789abcdeffedcba9876543210_00000000000000aa-01",
      "00-00000000000000000000000000000000-00000000000000aa-01",
      "00-0123456789abcdeffedcba9876543210-0000000000000000-01",
      "ff-0123456789abcdeffedcba9876543210-00000000000000aa-01",
      "00-0123456789ABCDEFFEDCBA9876543210-00000000000000aa-01",  // Case.
      "00-0123456789abcdeffedcba987654321g-00000000000000aa-01",
      "00-0123456789abcdeffedcba9876543210-00000000000000aa-01x",
  };
  for (const char* header : bad) {
    TraceContext ctx;
    ctx.trace_hi = 7;
    ctx.trace_lo = 8;
    ctx.span_id = 9;
    ctx.parent_span_id = 10;
    EXPECT_FALSE(ParseTraceparent(header, &ctx)) << header;
    EXPECT_EQ(ctx.trace_hi, 7u) << header;
    EXPECT_EQ(ctx.span_id, 9u) << header;
  }
}

TEST(TraceContextTest, RequestScopeNestsAndRestores) {
  EXPECT_FALSE(CurrentContext().valid());
  const TraceContext outer = MakeRootContext();
  {
    RequestScope outer_scope(outer);
    EXPECT_EQ(CurrentContext().span_id, outer.span_id);
    const TraceContext inner = ChildOf(outer);
    {
      RequestScope inner_scope(inner);
      EXPECT_EQ(CurrentContext().span_id, inner.span_id);
    }
    EXPECT_EQ(CurrentContext().span_id, outer.span_id);
  }
  EXPECT_FALSE(CurrentContext().valid());
}

#if P3GM_OBSERVABILITY_ENABLED

TEST_F(ObsTest, SpansInsideRequestScopeCarryTheContext) {
  const TraceContext ctx = ChildOf(MakeRootContext());
  {
    RequestScope scope(ctx);
    P3GM_TRACE_SPAN("ctx.stamped");
  }
  {
    P3GM_TRACE_SPAN("ctx.naked");  // Outside any scope: no attribution.
  }
  bool saw_stamped = false, saw_naked = false;
  for (const auto& event : TraceRecorder::Global().Events()) {
    if (std::string(event.name) == "ctx.stamped") {
      saw_stamped = true;
      EXPECT_TRUE(event.has_context());
      EXPECT_EQ(event.trace_hi, ctx.trace_hi);
      EXPECT_EQ(event.trace_lo, ctx.trace_lo);
      EXPECT_EQ(event.span_id, ctx.span_id);
      EXPECT_EQ(event.parent_id, ctx.parent_span_id);
    } else if (std::string(event.name) == "ctx.naked") {
      saw_naked = true;
      EXPECT_FALSE(event.has_context());
    }
  }
  EXPECT_TRUE(saw_stamped);
  EXPECT_TRUE(saw_naked);
  // The chrome export carries the ids as span args.
  const std::string json = TraceRecorder::Global().ToChromeJson();
  EXPECT_NE(json.find("\"trace_id\": \"" + TraceIdHex(ctx) + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"parent_id\": \"" + SpanIdHex(ctx.parent_span_id)),
            std::string::npos);
  EXPECT_TRUE(JsonBalanced(json));
}

TEST_F(ObsTest, InternedNamesAreStableAndDeduplicated) {
  const std::string dynamic = "serve.decode:" + std::string("alpha");
  const char* a = TraceRecorder::Global().InternName(dynamic);
  const char* b = TraceRecorder::Global().InternName("serve.decode:alpha");
  EXPECT_EQ(a, b);  // Same pointer: safe to store by address.
  EXPECT_STREQ(a, "serve.decode:alpha");
  TraceRecorder::Global().Append(a, 10, 20);
  const auto events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "serve.decode:alpha");
}

#endif  // P3GM_OBSERVABILITY_ENABLED

// ---------------------------------------------------- flight recorder
// Not gated on obs::Enabled(): the black box records in OFF builds too.

TEST(FlightRecorderTest, RecordsEventsAndDumpsThem) {
  FlightRecorder& flight = FlightRecorder::Global();
  const std::uint64_t before = flight.RecordedCount();
  flight.Record(FlightRecorder::EventKind::kRequest, "test.flight.evt",
                0xabcdULL, 2);
  flight.Record(FlightRecorder::EventKind::kQueueDepth,
                "test.flight.queue", 3, 256);
  EXPECT_GE(flight.RecordedCount(), before + 2);

  const std::string path = ::testing::TempDir() + "p3gm_flight_ut.dump";
  ASSERT_TRUE(flight.DumpToFile(path.c_str()));
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("=== p3gm flight recorder ==="), std::string::npos);
  EXPECT_NE(dump.find("request test.flight.evt a=000000000000abcd"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("queue test.flight.queue a=3"), std::string::npos);
  EXPECT_NE(dump.find("=== end flight recorder ==="), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, LogEventsKeepAMessagePrefix) {
  FlightRecorder& flight = FlightRecorder::Global();
  const char msg[] = "hello flight recorder test";
  flight.RecordLog("INFO", msg, sizeof(msg) - 1);
  const std::string path = ::testing::TempDir() + "p3gm_flight_log.dump";
  ASSERT_TRUE(flight.DumpToFile(path.c_str()));
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  // The two payload words hold the first 16 bytes of the message.
  EXPECT_NE(buffer.str().find("log INFO \"hello flight rec\""),
            std::string::npos)
      << buffer.str();
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder& flight = FlightRecorder::Global();
  flight.SetEnabled(false);
  const std::uint64_t before = flight.RecordedCount();
  flight.Record(FlightRecorder::EventKind::kRequest, "test.flight.off");
  EXPECT_EQ(flight.RecordedCount(), before);
  flight.SetEnabled(true);
}

TEST(FlightRecorderTest, RingWrapCountsOverwrites) {
  FlightRecorder& flight = FlightRecorder::Global();
  // Capacity applies to threads that have not recorded yet, so use a
  // fresh thread for the tiny ring.
  flight.SetCapacityPerThread(64);
  const std::uint64_t before = flight.OverwrittenCount();
  std::thread writer([&flight] {
    for (int i = 0; i < 200; ++i) {
      flight.Record(FlightRecorder::EventKind::kRequest, "test.wrap",
                    static_cast<std::uint64_t>(i));
    }
  });
  writer.join();
  EXPECT_GE(flight.OverwrittenCount(), before + (200 - 64));
  flight.SetCapacityPerThread(4096);
}

// --------------------------------------------------------- prometheus

TEST(PrometheusTest, SanitizesNamesAndEscapesLabelValues) {
  EXPECT_EQ(SanitizeMetricName("serve.request.latency_seconds"),
            "serve_request_latency_seconds");
  EXPECT_EQ(SanitizeMetricName("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(SanitizeMetricName("7zip"), "_7zip");
  EXPECT_EQ(SanitizeMetricName("ok:name_09"), "ok:name_09");
  EXPECT_EQ(EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
}

TEST(PrometheusTest, LabeledNameComposesCanonically) {
  EXPECT_EQ(LabeledName("base", {}), "base");
  EXPECT_EQ(LabeledName("base", {{"k", "v"}}), "base{k=\"v\"}");
  EXPECT_EQ(
      LabeledName("serve.x", {{"endpoint", "/v1/sample"}, {"r", "a\"b"}}),
      "serve.x{endpoint=\"/v1/sample\",r=\"a\\\"b\"}");
}

TEST(PrometheusTest, ContentTypeIsTheV004TextFormat) {
  EXPECT_STREQ(PrometheusContentType(),
               "text/plain; version=0.0.4; charset=utf-8");
}

// Full exposition pinned against a golden fixture: TYPE grouping across
// label variants, sanitized bases, escaped label values, cumulative le
// buckets with +Inf, and _sum/_count series.
TEST(PrometheusTest, ExpositionMatchesGoldenFixture) {
  Snapshot snapshot;
  snapshot.counters.push_back({"serve.requests", 42});
  snapshot.counters.push_back(
      {LabeledName("serve.sample.results", {{"result", "hit"}}), 7});
  snapshot.counters.push_back(
      {LabeledName("serve.sample.results", {{"result", "fresh"}}), 3});
  snapshot.gauges.push_back({"obs.flight.recorded_events", 128.0});
  snapshot.gauges.push_back({"7seas.depth", 1.5});
  HistogramSample h;
  h.name = LabeledName("serve.request.latency_seconds",
                       {{"endpoint", "/v1/sample"}, {"path", "a\"b\\c"}});
  h.bounds = {0.001, 0.01, 0.1};
  h.bucket_counts = {1, 2, 3, 4};  // Final entry = overflow bucket.
  h.count = 10;
  h.sum = 0.625;
  snapshot.histograms.push_back(h);

  std::ifstream in(std::string(P3GM_GOLDEN_DIR) + "/prometheus_small.txt",
                   std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(ToPrometheusText(snapshot), golden.str());
}

}  // namespace
}  // namespace obs
}  // namespace p3gm
