#include <cmath>

#include "gtest/gtest.h"
#include "nn/optimizer.h"

namespace p3gm {
namespace nn {
namespace {

// Minimizes f(x) = (x - 3)^2 with gradient 2(x - 3).
void RunQuadratic(Optimizer* opt, Parameter* p, int iters) {
  for (int i = 0; i < iters; ++i) {
    p->grad(0, 0) = 2.0 * (p->value(0, 0) - 3.0);
    opt->Step({p});
  }
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Parameter p("x", 1, 1);
  Sgd opt(0.1);
  RunQuadratic(&opt, &p, 200);
  EXPECT_NEAR(p.value(0, 0), 3.0, 1e-6);
}

TEST(SgdTest, MomentumConverges) {
  Parameter p("x", 1, 1);
  Sgd opt(0.05, 0.9);
  RunQuadratic(&opt, &p, 400);
  EXPECT_NEAR(p.value(0, 0), 3.0, 1e-4);
}

TEST(SgdTest, SingleStepIsLrTimesGrad) {
  Parameter p("x", 1, 1);
  p.value(0, 0) = 1.0;
  p.grad(0, 0) = 2.0;
  Sgd opt(0.5);
  opt.Step({&p});
  EXPECT_DOUBLE_EQ(p.value(0, 0), 0.0);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Parameter p("x", 1, 1);
  Adam opt(0.1);
  RunQuadratic(&opt, &p, 500);
  EXPECT_NEAR(p.value(0, 0), 3.0, 1e-3);
}

TEST(AdamTest, FirstStepIsApproxLr) {
  // With bias correction, the first Adam step has magnitude ~lr.
  Parameter p("x", 1, 1);
  p.grad(0, 0) = 123.0;  // Any gradient magnitude.
  Adam opt(0.01);
  opt.Step({&p});
  EXPECT_NEAR(p.value(0, 0), -0.01, 1e-6);
}

TEST(AdamTest, ScaleInvarianceOfUpdates) {
  // Adam's per-coordinate normalization: scaling all gradients by a
  // constant leaves the trajectory (approximately) unchanged.
  Parameter a("a", 1, 1), b("b", 1, 1);
  Adam oa(0.05), ob(0.05);
  for (int i = 0; i < 50; ++i) {
    a.grad(0, 0) = 2.0 * (a.value(0, 0) - 3.0);
    b.grad(0, 0) = 20.0 * (b.value(0, 0) - 3.0);
    oa.Step({&a});
    ob.Step({&b});
  }
  EXPECT_NEAR(a.value(0, 0), b.value(0, 0), 1e-6);
}

TEST(OptimizerTest, MultipleParamsUpdatedIndependently) {
  Parameter p("p", 2, 2), q("q", 1, 3);
  p.grad.Fill(1.0);
  q.grad.Fill(-1.0);
  Sgd opt(1.0);
  opt.Step({&p, &q});
  EXPECT_DOUBLE_EQ(p.value(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(q.value(0, 2), 1.0);
}

TEST(OptimizerTest, ZeroGradResetsAccumulation) {
  Parameter p("p", 1, 1);
  p.grad(0, 0) = 5.0;
  p.ZeroGrad();
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 0.0);
}

}  // namespace
}  // namespace nn
}  // namespace p3gm
