#include <cmath>

#include "gtest/gtest.h"
#include "data/dataset.h"
#include "linalg/ops.h"
#include "data/synthetic.h"
#include "data/transforms.h"

namespace p3gm {
namespace data {
namespace {

// ---------------------------------------------------------------- Dataset

Dataset TinyDataset() {
  Dataset d;
  d.name = "tiny";
  d.num_classes = 2;
  d.features = linalg::Matrix{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}, {0.7, 0.8}};
  d.labels = {0, 1, 0, 1};
  return d;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_DOUBLE_EQ(d.PositiveRate(), 0.5);
  EXPECT_EQ(d.ClassCounts(), (std::vector<std::size_t>{2, 2}));
}

TEST(DatasetTest, FilterByLabel) {
  Dataset pos = TinyDataset().FilterByLabel(1);
  EXPECT_EQ(pos.size(), 2u);
  EXPECT_DOUBLE_EQ(pos.features(0, 0), 0.3);
  EXPECT_DOUBLE_EQ(pos.PositiveRate(), 1.0);
}

TEST(DatasetTest, HeadClamps) {
  EXPECT_EQ(TinyDataset().Head(2).size(), 2u);
  EXPECT_EQ(TinyDataset().Head(100).size(), 4u);
}

TEST(StratifiedSplitTest, ValidatesInput) {
  EXPECT_FALSE(StratifiedSplit(Dataset{}, 0.5, 1).ok());
  EXPECT_FALSE(StratifiedSplit(TinyDataset(), 0.0, 1).ok());
  EXPECT_FALSE(StratifiedSplit(TinyDataset(), 1.0, 1).ok());
}

TEST(StratifiedSplitTest, PreservesClassRatio) {
  Dataset d = MakeAdultLike(2000, 5);
  auto split = StratifiedSplit(d, 0.25, 7);
  ASSERT_TRUE(split.ok());
  EXPECT_NEAR(split->train.PositiveRate(), d.PositiveRate(), 0.02);
  EXPECT_NEAR(split->test.PositiveRate(), d.PositiveRate(), 0.02);
  EXPECT_EQ(split->train.size() + split->test.size(), d.size());
}

TEST(StratifiedSplitTest, DisjointCoverage) {
  Dataset d = TinyDataset();
  auto split = StratifiedSplit(d, 0.5, 3);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 2u);
  EXPECT_EQ(split->test.size(), 2u);
}

TEST(StratifiedResampleTest, MatchesReferenceRatio) {
  Dataset d = MakeAdultLike(2000, 9);
  util::Rng rng(11);
  Dataset r = StratifiedResample(d, 500, &rng);
  EXPECT_EQ(r.size(), 500u);
  EXPECT_NEAR(r.PositiveRate(), d.PositiveRate(), 0.03);
}

// -------------------------------------------------------------- Scaler

TEST(MinMaxScalerTest, MapsToUnitInterval) {
  linalg::Matrix x = {{-2.0, 10.0}, {2.0, 20.0}, {0.0, 15.0}};
  auto s = MinMaxScaler::Fit(x);
  ASSERT_TRUE(s.ok());
  linalg::Matrix t = s->Transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(t(2, 1), 0.5);
}

TEST(MinMaxScalerTest, InverseRoundTrip) {
  linalg::Matrix x = {{-2.0, 10.0}, {2.0, 20.0}};
  auto s = MinMaxScaler::Fit(x);
  ASSERT_TRUE(s.ok());
  linalg::Matrix round = s->InverseTransform(s->Transform(x));
  EXPECT_LT(linalg::MaxAbsDiff(round, x), 1e-12);
}

TEST(MinMaxScalerTest, ConstantColumnMapsToZero) {
  linalg::Matrix x = {{5.0}, {5.0}};
  auto s = MinMaxScaler::Fit(x);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->Transform(x)(0, 0), 0.0);
}

// -------------------------------------------------------------- One-hot

TEST(OneHotTest, RoundTrip) {
  std::vector<std::size_t> labels = {0, 2, 1, 2};
  linalg::Matrix oh = LabelsToOneHot(labels, 3);
  EXPECT_DOUBLE_EQ(oh(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(oh(1, 0), 0.0);
  EXPECT_EQ(OneHotToLabels(oh), labels);
}

TEST(OneHotTest, ArgmaxDecodesSoftRows) {
  linalg::Matrix soft = {{0.2, 0.7, 0.1}, {0.6, 0.3, 0.1}};
  EXPECT_EQ(OneHotToLabels(soft), (std::vector<std::size_t>{1, 0}));
}

TEST(AttachDetachTest, RoundTrip) {
  Dataset d = TinyDataset();
  linalg::Matrix joint = AttachLabels(d.features, d.labels, 2);
  EXPECT_EQ(joint.cols(), 4u);
  LabeledRows rows = DetachLabels(joint, 2);
  EXPECT_EQ(rows.labels, d.labels);
  EXPECT_LT(linalg::MaxAbsDiff(rows.features, d.features), 1e-12);
}

TEST(ClampTest, ClampsIntoRange) {
  linalg::Matrix m = {{-1.0, 0.5, 2.0}};
  Clamp(0.0, 1.0, &m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m(0, 2), 1.0);
}

// ------------------------------------------------- Synthetic generators

class GeneratorTest
    : public ::testing::TestWithParam<std::function<Dataset()>> {};

TEST(SyntheticTest, CreditShape) {
  Dataset d = MakeCreditLike(2000, 3);
  EXPECT_EQ(d.dim(), 29u);
  EXPECT_EQ(d.num_classes, 2u);
  EXPECT_NEAR(d.PositiveRate(), 0.002, 0.002);
}

TEST(SyntheticTest, CreditCustomPositiveRate) {
  Dataset d = MakeCreditLike(2000, 3, 0.05);
  EXPECT_NEAR(d.PositiveRate(), 0.05, 0.005);
}

TEST(SyntheticTest, CreditPositivesAreSeparable) {
  // The class-conditional shift must be detectable: positives' mean in
  // the shifted dimensions differs from negatives'.
  Dataset d = MakeCreditLike(5000, 7, 0.05);
  Dataset pos = d.FilterByLabel(1);
  Dataset neg = d.FilterByLabel(0);
  double max_gap = 0.0;
  for (std::size_t j = 0; j < d.dim(); ++j) {
    double mp = 0, mn = 0;
    for (std::size_t i = 0; i < pos.size(); ++i) mp += pos.features(i, j);
    for (std::size_t i = 0; i < neg.size(); ++i) mn += neg.features(i, j);
    max_gap = std::max(max_gap, std::fabs(mp / pos.size() - mn / neg.size()));
  }
  EXPECT_GT(max_gap, 0.1);
}

TEST(SyntheticTest, AdultShapeAndRate) {
  Dataset d = MakeAdultLike(3000, 5);
  EXPECT_EQ(d.dim(), 15u);
  EXPECT_NEAR(d.PositiveRate(), 0.241, 0.02);
}

TEST(SyntheticTest, IsoletShapeAndRate) {
  Dataset d = MakeIsoletLike(800, 5);
  EXPECT_EQ(d.dim(), 617u);
  EXPECT_NEAR(d.PositiveRate(), 0.192, 0.05);
}

TEST(SyntheticTest, EsrShapeAndRate) {
  Dataset d = MakeEsrLike(1000, 5);
  EXPECT_EQ(d.dim(), 179u);
  EXPECT_NEAR(d.PositiveRate(), 0.2, 0.04);
}

TEST(SyntheticTest, AllFeaturesInUnitInterval) {
  for (const Dataset& d :
       {MakeCreditLike(500, 1, 0.01), MakeAdultLike(500, 1),
        MakeIsoletLike(200, 1), MakeEsrLike(300, 1)}) {
    for (std::size_t i = 0; i < d.features.size(); ++i) {
      EXPECT_GE(d.features.data()[i], 0.0) << d.name;
      EXPECT_LE(d.features.data()[i], 1.0) << d.name;
    }
  }
}

TEST(SyntheticTest, DeterministicInSeed) {
  Dataset a = MakeAdultLike(300, 42);
  Dataset b = MakeAdultLike(300, 42);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.labels, b.labels);
  Dataset c = MakeAdultLike(300, 43);
  EXPECT_FALSE(a.features == c.features);
}

TEST(SyntheticTest, EsrSeizureHasHigherAmplitude) {
  Dataset d = MakeEsrLike(2000, 9);
  // The last column is the amplitude summary; seizure class mean must be
  // clearly higher.
  const std::size_t amp = d.dim() - 1;
  double pos = 0, neg = 0;
  std::size_t np = 0, nn = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.labels[i] == 1) {
      pos += d.features(i, amp);
      ++np;
    } else {
      neg += d.features(i, amp);
      ++nn;
    }
  }
  EXPECT_GT(pos / np, neg / nn + 0.1);
}

}  // namespace
}  // namespace data
}  // namespace p3gm
