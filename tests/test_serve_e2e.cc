// End-to-end tests for the `p3gm serve` daemon: a real Server on an
// ephemeral port exercised through the in-repo blocking HttpClient over
// TCP. Covers the full surface — health, model listing, sample shape,
// caching, hot-reload, overload, error mapping — plus lifecycle
// hygiene: clean shutdown must not leak a single file descriptor.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/observability.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace p3gm {
namespace serve {
namespace {

using serve_test::MakePackage;
using serve_test::TempDir;

class ServeE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Global().Reset();
    pkg_path_ = dir_.WritePackage(MakePackage("alpha"), "alpha");
    beta_path_ = dir_.WritePackage(MakePackage("beta", /*variant=*/1),
                                   "beta");
  }

  // Starts a server on an ephemeral port and connects a client.
  void StartServer(ServerOptions options,
                   std::vector<std::string> packages) {
    options.port = 0;
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->Init(packages).ok());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  // Parses a JSON body or fails the test.
  obs::json::Value ParseJson(const std::string& body) {
    obs::json::Value value;
    std::string error;
    EXPECT_TRUE(obs::json::Parse(body, &value, &error))
        << error << " in: " << body;
    return value;
  }

  TempDir dir_;
  std::string pkg_path_;
  std::string beta_path_;
  std::unique_ptr<Server> server_;
  HttpClient client_;
};

TEST_F(ServeE2eTest, HealthzReportsModels) {
  StartServer(ServerOptions(), {pkg_path_, beta_path_});
  auto response = client_.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  obs::json::Value body = ParseJson(response->body);
  EXPECT_EQ(body.Find("status")->string_value, "ok");
  EXPECT_EQ(body.Find("models")->number_value, 2.0);
}

TEST_F(ServeE2eTest, ModelsListsLoadedPackages) {
  StartServer(ServerOptions(), {pkg_path_, beta_path_});
  auto response = client_.Get("/v1/models");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  obs::json::Value body = ParseJson(response->body);
  const obs::json::Value* models = body.Find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_EQ(models->items.size(), 2u);
  // Registry order is the map order (sorted by name).
  EXPECT_EQ(models->items[0].Find("name")->string_value, "alpha");
  EXPECT_EQ(models->items[0].Find("latent_dim")->number_value, 3.0);
  EXPECT_EQ(models->items[0].Find("feature_dim")->number_value, 4.0);
  EXPECT_EQ(models->items[0].Find("num_classes")->number_value, 2.0);
  EXPECT_EQ(models->items[1].Find("name")->string_value, "beta");
}

TEST_F(ServeE2eTest, SampleReturnsRequestedShape) {
  StartServer(ServerOptions(), {pkg_path_});
  auto response = client_.Post("/v1/sample",
                               "{\"model\": \"alpha\", \"n\": 7}");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  obs::json::Value body = ParseJson(response->body);
  EXPECT_EQ(body.Find("model")->string_value, "alpha");
  EXPECT_EQ(body.Find("n")->number_value, 7.0);
  EXPECT_EQ(body.Find("dim")->number_value, 4.0);
  EXPECT_EQ(body.Find("cached")->bool_value, false);
  const obs::json::Value* rows = body.Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items.size(), 7u);
  for (const obs::json::Value& row : rows->items) {
    ASSERT_EQ(row.items.size(), 4u);
    for (const obs::json::Value& cell : row.items) {
      // Bernoulli decoder output is a probability.
      EXPECT_GE(cell.number_value, 0.0);
      EXPECT_LE(cell.number_value, 1.0);
    }
  }
  const obs::json::Value* labels = body.Find("labels");
  ASSERT_NE(labels, nullptr);
  ASSERT_EQ(labels->items.size(), 7u);
  for (const obs::json::Value& label : labels->items) {
    EXPECT_TRUE(label.number_value == 0.0 || label.number_value == 1.0);
  }
}

TEST_F(ServeE2eTest, KeepAliveServesSequentialRequests) {
  StartServer(ServerOptions(), {pkg_path_});
  for (int i = 1; i <= 5; ++i) {
    auto response = client_.Post(
        "/v1/sample",
        "{\"model\": \"alpha\", \"n\": " + std::to_string(i) + "}");
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->status, 200);
    obs::json::Value body = ParseJson(response->body);
    EXPECT_EQ(body.Find("n")->number_value, static_cast<double>(i));
  }
}

TEST_F(ServeE2eTest, ErrorMapping) {
  StartServer(ServerOptions(), {pkg_path_});
  struct Case {
    std::string method, target, body;
    int want;
  } cases[] = {
      {"POST", "/v1/sample", "{\"model\": \"ghost\", \"n\": 3}", 404},
      {"POST", "/v1/sample", "not json at all", 400},
      {"POST", "/v1/sample", "{\"model\": \"alpha\", \"n\": 0}", 400},
      {"POST", "/v1/sample", "{\"model\": \"alpha\", \"n\": -2}", 400},
      {"POST", "/v1/sample", "{\"model\": \"alpha\"}", 400},
      {"POST", "/v1/sample", "{\"model\": \"alpha\", \"n\": 999999999}",
       400},
      {"GET", "/nope", "", 404},
      {"POST", "/v1/nope", "{}", 404},
      {"DELETE", "/v1/sample", "", 405},
  };
  for (const Case& c : cases) {
    auto response = client_.Request(c.method, c.target, c.body);
    ASSERT_TRUE(response.ok())
        << c.method << " " << c.target << ": " << response.status();
    EXPECT_EQ(response->status, c.want) << c.method << " " << c.target;
    // Every error body is a JSON object with an "error" key.
    if (response->status >= 400) {
      obs::json::Value body = ParseJson(response->body);
      EXPECT_NE(body.Find("error"), nullptr);
    }
  }
}

TEST_F(ServeE2eTest, MalformedHttpGets400AndClose) {
  StartServer(ServerOptions(), {pkg_path_});
  auto response = client_.Raw("GET /  HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 400);
  const std::string* connection = response->FindHeader("Connection");
  ASSERT_NE(connection, nullptr);
  EXPECT_EQ(*connection, "close");
}

TEST_F(ServeE2eTest, OverloadAnswers503WithRetryAfter) {
  ServerOptions options;
  options.queue_limit = 0;  // Every sample job overflows immediately.
  StartServer(options, {pkg_path_});
  auto response = client_.Post("/v1/sample",
                               "{\"model\": \"alpha\", \"n\": 2}");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 503);
  const std::string* retry = response->FindHeader("Retry-After");
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(*retry, "1");
  // The connection stays usable: overload is per-request, not fatal.
  auto health = client_.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
}

TEST_F(ServeE2eTest, CacheServesRepeatRequests) {
  ServerOptions options;
  options.cache_entries = 8;
  StartServer(options, {pkg_path_});
  const std::string body = "{\"model\": \"alpha\", \"n\": 4}";
  auto first = client_.Post("/v1/sample", body);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->status, 200);
  EXPECT_EQ(ParseJson(first->body).Find("cached")->bool_value, false);
  auto second = client_.Post("/v1/sample", body);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(second->status, 200);
  obs::json::Value parsed = ParseJson(second->body);
  EXPECT_EQ(parsed.Find("cached")->bool_value, true);
  ASSERT_EQ(parsed.Find("rows")->items.size(), 4u);
  // "fresh": true bypasses the cache.
  auto fresh = client_.Post(
      "/v1/sample", "{\"model\": \"alpha\", \"n\": 4, \"fresh\": true}");
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(ParseJson(fresh->body).Find("cached")->bool_value, false);
  // Seeded requests never come from the cache.
  auto seeded = client_.Post(
      "/v1/sample", "{\"model\": \"alpha\", \"n\": 4, \"seed\": 9}");
  ASSERT_TRUE(seeded.ok()) << seeded.status();
  EXPECT_EQ(ParseJson(seeded->body).Find("cached")->bool_value, false);
}

TEST_F(ServeE2eTest, ReloadBumpsGenerationAndInvalidatesCache) {
  ServerOptions options;
  options.cache_entries = 8;
  StartServer(options, {pkg_path_});
  const std::string body = "{\"model\": \"alpha\", \"n\": 3}";
  ASSERT_TRUE(client_.Post("/v1/sample", body).ok());  // Warm the cache.
  auto warm = client_.Post("/v1/sample", body);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(ParseJson(warm->body).Find("cached")->bool_value, true);

  auto reload = client_.Post("/v1/reload", "");
  ASSERT_TRUE(reload.ok()) << reload.status();
  ASSERT_EQ(reload->status, 200);
  obs::json::Value parsed = ParseJson(reload->body);
  EXPECT_EQ(parsed.Find("generation")->number_value, 2.0);

  // Generation changed -> old cache entries unreachable.
  auto after = client_.Post("/v1/sample", body);
  ASSERT_TRUE(after.ok());
  obs::json::Value after_parsed = ParseJson(after->body);
  EXPECT_EQ(after_parsed.Find("cached")->bool_value, false);
  EXPECT_EQ(after_parsed.Find("generation")->number_value, 2.0);
}

TEST_F(ServeE2eTest, RequestReloadApiMatchesEndpoint) {
  StartServer(ServerOptions(), {pkg_path_});
  EXPECT_EQ(server_->registry().generation(), 1u);
  server_->RequestReload();  // What the SIGHUP handler calls.
  // The loop picks the flag up within its poll timeout; the next
  // response is ordered after the reload only eventually, so poll.
  for (int i = 0; i < 100 && server_->registry().generation() < 2; ++i) {
    auto health = client_.Get("/healthz");
    ASSERT_TRUE(health.ok());
  }
  EXPECT_EQ(server_->registry().generation(), 2u);
}

TEST_F(ServeE2eTest, MetricsEndpointExportsRegistry) {
  StartServer(ServerOptions(), {pkg_path_});
  ASSERT_TRUE(
      client_.Post("/v1/sample", "{\"model\": \"alpha\", \"n\": 2}").ok());
  auto response = client_.Get("/v1/metrics");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  obs::json::Value body = ParseJson(response->body);
  const obs::json::Value* counters = body.Find("counters");
  ASSERT_NE(counters, nullptr);
#if P3GM_OBSERVABILITY_ENABLED
  const obs::json::Value* requests = counters->Find("serve.requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->number_value, 2.0);
  const obs::json::Value* rows = counters->Find("serve.sample.rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_GE(rows->number_value, 2.0);
#else
  // With the layer compiled out the endpoint still answers valid JSON;
  // counter values are not meaningful, so the object's presence is the
  // whole contract.
#endif
}

TEST_F(ServeE2eTest, PollBackendServesRequests) {
  ::setenv("P3GM_SERVE_FORCE_POLL", "1", 1);
  StartServer(ServerOptions(), {pkg_path_});
  ::unsetenv("P3GM_SERVE_FORCE_POLL");
  auto response = client_.Post("/v1/sample",
                               "{\"model\": \"alpha\", \"n\": 3}");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(ParseJson(response->body).Find("rows")->items.size(), 3u);
}

TEST_F(ServeE2eTest, InitFailsOnMissingPackage) {
  Server server{ServerOptions()};
  const util::Status status =
      server.Init({dir_.path() + "/does_not_exist.release"});
  EXPECT_FALSE(status.ok());
  // The failing path must be identifiable from the message.
  EXPECT_NE(status.message().find("does_not_exist"), std::string::npos);
}

TEST_F(ServeE2eTest, InitFailsOnDuplicateServingName) {
  Server server{ServerOptions()};
  const util::Status status = server.Init({pkg_path_, pkg_path_});
  EXPECT_FALSE(status.ok());
}

TEST_F(ServeE2eTest, CleanShutdownLeaksNoFds) {
  const int before = serve_test::CountOpenFds();
  {
    ServerOptions options;
    options.port = 0;
    Server server(options);
    ASSERT_TRUE(server.Init({pkg_path_}).ok());
    ASSERT_TRUE(server.Start().ok());
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(
        client.Post("/v1/sample", "{\"model\": \"alpha\", \"n\": 2}").ok());
    server.Stop();
  }
  const int after = serve_test::CountOpenFds();
  EXPECT_EQ(before, after);
}

TEST_F(ServeE2eTest, StopDrainsInFlightWork) {
  StartServer(ServerOptions(), {pkg_path_});
  // Fire a request and stop immediately; the queued job must still be
  // answered (graceful drain), not dropped.
  ASSERT_TRUE(client_.connected());
  auto response = client_.Post("/v1/sample",
                               "{\"model\": \"alpha\", \"n\": 50}");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

}  // namespace
}  // namespace serve
}  // namespace p3gm
