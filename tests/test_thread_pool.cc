// Lifecycle, scheduling and failure-path tests of the deterministic
// thread pool (util/thread_pool.h). The equivalence of the parallelized
// numeric kernels across thread counts is covered separately in
// test_parallel_equivalence.cc.

#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace util {
namespace {

// Restores the automatic thread-count resolution when a test exits.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) { SetNumThreads(n); }
  ~ThreadCountGuard() { SetNumThreads(0); }
};

TEST(ParallelConfigTest, ResolveDefaultsToAtLeastOne) {
  ParallelConfig config;
  EXPECT_GE(config.Resolve(), 1u);
}

TEST(ParallelConfigTest, ExplicitCountWins) {
  ParallelConfig config;
  config.num_threads = 7;
  EXPECT_EQ(config.Resolve(), 7u);
}

TEST(ParallelConfigTest, FromEnvRejectsInvalidValues) {
  // Anything that is not a plain positive integer must fall back to
  // automatic resolution (num_threads = 0). "-3" is the trap: strtoull
  // silently negates it into a huge unsigned value.
  for (const char* bad : {"-3", "0", "garbage", "3x", "", " 4", "-0"}) {
    ASSERT_EQ(setenv("P3GM_NUM_THREADS", bad, 1), 0);
    EXPECT_EQ(ParallelConfig::FromEnv().num_threads, 0u) << "env=" << bad;
  }
  ASSERT_EQ(setenv("P3GM_NUM_THREADS", "6", 1), 0);
  EXPECT_EQ(ParallelConfig::FromEnv().num_threads, 6u);
  unsetenv("P3GM_NUM_THREADS");
}

TEST(ThreadPoolTest, SetNumThreadsIsObserved) {
  ThreadCountGuard guard(5);
  EXPECT_EQ(NumThreads(), 5u);
}

TEST(ThreadPoolTest, PoolRunsEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h = 0;
  pool.Run([&](std::size_t w) { hits[w]++; });
  for (std::size_t w = 0; w < 4; ++w) EXPECT_EQ(hits[w].load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.Run([&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int calls = 0;
  pool.Run([&](std::size_t w) {
    EXPECT_EQ(w, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, EmptyRangeInvokesNothing) {
  ThreadCountGuard guard(4);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { calls++; });
  ParallelFor(7, 3, 1, [&](std::size_t, std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingletonRangeRunsOnce) {
  ThreadCountGuard guard(4);
  std::vector<int> hits(1, 0);
  ParallelFor(0, 1, 1, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
    hits[0]++;
  });
  EXPECT_EQ(hits[0], 1);
}

TEST(ParallelForTest, CoversRangeExactlyOnceAtGrainBoundaries) {
  ThreadCountGuard guard(3);
  // Ranges chosen to hit: range < grain, range == grain, range a
  // multiple of grain, and range leaving a ragged tail.
  for (std::size_t range : {1u, 4u, 8u, 12u, 13u, 17u, 100u}) {
    for (std::size_t grain : {1u, 4u, 8u, 64u}) {
      std::vector<std::atomic<int>> hits(range);
      for (auto& h : hits) h = 0;
      ParallelFor(0, range, grain, [&](std::size_t b, std::size_t e) {
        ASSERT_LE(b, e);
        for (std::size_t i = b; i < e; ++i) hits[i]++;
      });
      for (std::size_t i = 0; i < range; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "range=" << range
                                     << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, RespectsNonZeroBegin) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(20);
  for (auto& h : hits) h = 0;
  ParallelFor(5, 17, 2, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 17) ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, GrainLimitsWorkerCount) {
  ThreadCountGuard guard(8);
  // 10 indices at grain 4 admit at most ceil(10/4) = 3 blocks.
  std::atomic<int> blocks{0};
  ParallelFor(0, 10, 4, [&](std::size_t, std::size_t) { blocks++; });
  EXPECT_LE(blocks.load(), 3);
  EXPECT_GE(blocks.load(), 1);
}

TEST(ParallelForTest, ExceptionPropagatesOutOfWorkers) {
  ThreadCountGuard guard(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](std::size_t b, std::size_t) {
                    if (b >= 25) throw std::runtime_error("worker boom");
                  }),
      std::runtime_error);
  // The pool must survive a throwing job and keep scheduling.
  std::atomic<int> calls{0};
  ParallelFor(0, 100, 1, [&](std::size_t, std::size_t) { calls++; });
  EXPECT_GE(calls.load(), 1);
}

TEST(ParallelForTest, LowestBlockExceptionWins) {
  ThreadCountGuard guard(4);
  try {
    ParallelFor(0, 100, 1, [&](std::size_t b, std::size_t) {
      throw std::runtime_error("block " + std::to_string(b));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block 0");
  }
}

TEST(ParallelForTest, NestedCallIsRejectedToSerialInline) {
  ThreadCountGuard guard(4);
  // An inner ParallelFor from inside a worker must not re-enter the pool
  // (which would deadlock a static-split pool); it degrades to one inline
  // serial call covering the whole inner range.
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  std::atomic<int> inner_blocks{0};
  ParallelFor(0, 8, 1, [&](std::size_t ob, std::size_t oe) {
    EXPECT_TRUE(InParallelRegion());
    for (std::size_t o = ob; o < oe; ++o) {
      ParallelFor(0, 8, 1, [&](std::size_t ib, std::size_t ie) {
        inner_blocks++;
        EXPECT_EQ(ib, 0u);  // Inline: one call over the full range.
        EXPECT_EQ(ie, 8u);
        for (std::size_t i = ib; i < ie; ++i) hits[o * 8 + i]++;
      });
    }
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_blocks.load(), 8);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForChunksTest, ChunkGridIsPureFunctionOfRangeAndGrain) {
  // The chunk grid must not depend on the thread count — that is what
  // makes chunked reductions bit-identical across thread counts.
  auto record = [](std::size_t threads) {
    ThreadCountGuard guard(threads);
    std::vector<std::array<std::size_t, 3>> chunks(NumChunks(3, 45, 7));
    ParallelForChunks(3, 45, 7,
                      [&](std::size_t c, std::size_t b, std::size_t e) {
                        chunks[c] = {c, b, e};
                      });
    return chunks;
  };
  const auto serial = record(1);
  ASSERT_EQ(serial.size(), NumChunks(3, 45, 7));
  EXPECT_EQ(serial.front()[1], 3u);
  EXPECT_EQ(serial.back()[2], 45u);
  for (std::size_t threads : {2u, 3u, 8u}) {
    EXPECT_EQ(record(threads), serial) << "threads=" << threads;
  }
}

TEST(ParallelForChunksTest, NumChunksEdgeCases) {
  EXPECT_EQ(NumChunks(0, 0, 4), 0u);
  EXPECT_EQ(NumChunks(5, 2, 4), 0u);
  EXPECT_EQ(NumChunks(0, 1, 4), 1u);
  EXPECT_EQ(NumChunks(0, 8, 4), 2u);
  EXPECT_EQ(NumChunks(0, 9, 4), 3u);
  EXPECT_EQ(NumChunks(0, 9, 0), 9u);  // Zero grain is promoted to 1.
}

TEST(ParallelReduceTest, SumIsBitIdenticalAcrossThreadCounts) {
  // A floating-point sum whose terms do not commute exactly: the chunked
  // reduction must still give the same bits for every thread count
  // because the chunk grid and the combine order are thread-independent.
  std::vector<double> values(1013);
  double x = 0.123456;
  for (double& v : values) {
    x = 3.9 * x * (1.0 - x);  // Logistic map: well-spread magnitudes.
    v = x - 0.5;
  }
  auto sum_with = [&](std::size_t threads) {
    ThreadCountGuard guard(threads);
    return ParallelReduce(
        0, values.size(), 64, 0.0,
        [&](std::size_t b, std::size_t e) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += values[i];
          return s;
        },
        [](double* acc, double partial) { *acc += partial; });
  };
  const double serial = sum_with(1);
  for (std::size_t threads : {2u, 3u, 8u}) {
    EXPECT_EQ(sum_with(threads), serial) << "threads=" << threads;
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  const double out = ParallelReduce(
      4, 4, 8, -1.5, [](std::size_t, std::size_t) { return 99.0; },
      [](double* acc, double partial) { *acc += partial; });
  EXPECT_EQ(out, -1.5);
}

TEST(ThreadPoolTest, OversubscriptionBeyondHardwareWorks) {
  // The equivalence suite runs at 8 threads on any machine, so heavy
  // oversubscription must be safe.
  ThreadCountGuard guard(16);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  ParallelFor(0, 1000, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace util
}  // namespace p3gm
