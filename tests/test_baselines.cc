#include <cmath>
#include <set>

#include "gtest/gtest.h"
#include "baselines/dp_gm.h"
#include "baselines/privbayes.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace p3gm {
namespace baselines {
namespace {

// --------------------------------------------------------------- DP-GM

DpGmOptions SmallDpGm() {
  DpGmOptions opt;
  opt.num_clusters = 3;
  opt.kmeans_iters = 2;
  opt.vae.hidden = 16;
  opt.vae.latent_dim = 2;
  opt.vae.epochs = 3;
  opt.vae.batch_size = 20;
  opt.vae.sgd_sigma = 2.0;
  return opt;
}

TEST(DpGmTest, ValidatesInput) {
  DpGmSynthesizer synth(SmallDpGm());
  EXPECT_FALSE(synth.Fit(data::Dataset{}).ok());
  util::Rng rng(3);
  EXPECT_FALSE(synth.Generate(10, &rng).ok());  // Generate before Fit.
}

TEST(DpGmTest, FitAndGenerateShapes) {
  data::Dataset train = data::MakeAdultLike(300, 5);
  DpGmSynthesizer synth(SmallDpGm());
  ASSERT_TRUE(synth.Fit(train).ok());
  util::Rng rng(7);
  auto gen = synth.Generate(120, &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->size(), 120u);
  EXPECT_EQ(gen->dim(), train.dim());
  EXPECT_EQ(synth.name(), "DP-GM");
}

TEST(DpGmTest, EpsilonAccountingPositiveAndMonotone) {
  data::Dataset train = data::MakeAdultLike(300, 9);
  DpGmOptions opt = SmallDpGm();
  DpGmSynthesizer a(opt);
  ASSERT_TRUE(a.Fit(train).ok());
  const double eps_a = a.ComputeEpsilon(1e-5).epsilon;
  EXPECT_GT(eps_a, 0.0);
  opt.vae.sgd_sigma = 8.0;  // More noise, less epsilon.
  DpGmSynthesizer b(opt);
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_LT(b.ComputeEpsilon(1e-5).epsilon, eps_a);
}

TEST(DpGmTest, CalibrationMeetsTarget) {
  DpGmOptions opt = SmallDpGm();
  auto sigma = DpGmSynthesizer::CalibrateSigma(opt, 1000, 2.0, 1e-5);
  ASSERT_TRUE(sigma.ok());
  EXPECT_GT(*sigma, 0.0);
}

TEST(DpGmTest, FitTwiceFails) {
  data::Dataset train = data::MakeAdultLike(200, 11);
  DpGmSynthesizer synth(SmallDpGm());
  ASSERT_TRUE(synth.Fit(train).ok());
  EXPECT_FALSE(synth.Fit(train).ok());
}

// ------------------------------------------------------------ PrivBayes

PrivBayesOptions SmallPrivBayes() {
  PrivBayesOptions opt;
  opt.epsilon = 2.0;
  opt.degree = 2;
  opt.bins = 4;
  opt.parent_window = 4;
  return opt;
}

TEST(PrivBayesTest, ValidatesInput) {
  PrivBayesSynthesizer synth(SmallPrivBayes());
  EXPECT_FALSE(synth.Fit(data::Dataset{}).ok());
  PrivBayesOptions bad = SmallPrivBayes();
  bad.epsilon = 0.0;
  PrivBayesSynthesizer synth2(bad);
  EXPECT_FALSE(synth2.Fit(data::MakeAdultLike(200, 3)).ok());
}

TEST(PrivBayesTest, FitAndGenerateShapes) {
  data::Dataset train = data::MakeAdultLike(500, 5);
  PrivBayesSynthesizer synth(SmallPrivBayes());
  ASSERT_TRUE(synth.Fit(train).ok());
  util::Rng rng(7);
  auto gen = synth.Generate(200, &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->size(), 200u);
  EXPECT_EQ(gen->dim(), train.dim());
  // Features decoded into the training range [0, 1].
  for (std::size_t i = 0; i < gen->features.size(); ++i) {
    EXPECT_GE(gen->features.data()[i], -1e-9);
    EXPECT_LE(gen->features.data()[i], 1.0 + 1e-9);
  }
}

TEST(PrivBayesTest, NetworkCoversAllAttributes) {
  data::Dataset train = data::MakeAdultLike(400, 9);
  PrivBayesSynthesizer synth(SmallPrivBayes());
  ASSERT_TRUE(synth.Fit(train).ok());
  const auto& order = synth.attribute_order();
  EXPECT_EQ(order.size(), train.dim() + 1);  // Features + label column.
  std::set<std::size_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
}

TEST(PrivBayesTest, EpsilonIsTheConfiguredBudget) {
  PrivBayesSynthesizer synth(SmallPrivBayes());
  EXPECT_DOUBLE_EQ(synth.ComputeEpsilon(1e-5).epsilon, 2.0);
}

TEST(PrivBayesTest, HighEpsilonPreservesLabelDependence) {
  // With a generous budget PrivBayes must reproduce a strong pairwise
  // dependence: labels generated alongside a feature that determines
  // them.
  util::Rng data_rng(11);
  data::Dataset train;
  train.name = "synthetic-pair";
  train.num_classes = 2;
  train.features = linalg::Matrix(2000, 2);
  train.labels.resize(2000);
  for (std::size_t i = 0; i < 2000; ++i) {
    const double v = data_rng.Uniform();
    train.features(i, 0) = v;
    train.features(i, 1) = data_rng.Uniform();
    train.labels[i] = v > 0.5 ? 1 : 0;
  }
  PrivBayesOptions opt = SmallPrivBayes();
  opt.epsilon = 100.0;  // Essentially non-private.
  opt.bins = 8;
  PrivBayesSynthesizer synth(opt);
  ASSERT_TRUE(synth.Fit(train).ok());
  util::Rng rng(13);
  auto gen = synth.Generate(2000, &rng);
  ASSERT_TRUE(gen.ok());
  // Check the generated dependence: P(label=1 | f0 > 0.5) >> P(label=1 |
  // f0 <= 0.5).
  double hi = 0, hi_n = 0, lo = 0, lo_n = 0;
  for (std::size_t i = 0; i < gen->size(); ++i) {
    if (gen->features(i, 0) > 0.5) {
      hi += static_cast<double>(gen->labels[i]);
      ++hi_n;
    } else {
      lo += static_cast<double>(gen->labels[i]);
      ++lo_n;
    }
  }
  ASSERT_GT(hi_n, 100.0);
  ASSERT_GT(lo_n, 100.0);
  EXPECT_GT(hi / hi_n, lo / lo_n + 0.5);
}

TEST(PrivBayesTest, LowEpsilonDestroysDependence) {
  // Same data, tiny budget: the noisy conditionals drown the signal.
  util::Rng data_rng(17);
  data::Dataset train;
  train.num_classes = 2;
  train.features = linalg::Matrix(500, 2);
  train.labels.resize(500);
  for (std::size_t i = 0; i < 500; ++i) {
    const double v = data_rng.Uniform();
    train.features(i, 0) = v;
    train.features(i, 1) = data_rng.Uniform();
    train.labels[i] = v > 0.5 ? 1 : 0;
  }
  PrivBayesOptions opt = SmallPrivBayes();
  opt.epsilon = 0.01;
  PrivBayesSynthesizer synth(opt);
  ASSERT_TRUE(synth.Fit(train).ok());
  util::Rng rng(19);
  auto gen = synth.Generate(1000, &rng);
  ASSERT_TRUE(gen.ok());
  double hi = 0, hi_n = 1e-9, lo = 0, lo_n = 1e-9;
  for (std::size_t i = 0; i < gen->size(); ++i) {
    if (gen->features(i, 0) > 0.5) {
      hi += static_cast<double>(gen->labels[i]);
      ++hi_n;
    } else {
      lo += static_cast<double>(gen->labels[i]);
      ++lo_n;
    }
  }
  EXPECT_LT(std::fabs(hi / hi_n - lo / lo_n), 0.45);
}

TEST(PrivBayesTest, DeterministicGivenSeed) {
  data::Dataset train = data::MakeAdultLike(300, 21);
  PrivBayesSynthesizer a(SmallPrivBayes()), b(SmallPrivBayes());
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_EQ(a.attribute_order(), b.attribute_order());
}

}  // namespace
}  // namespace baselines
}  // namespace p3gm
