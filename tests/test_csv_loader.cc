#include <cmath>
#include <fstream>

#include "gtest/gtest.h"
#include "data/csv_loader.h"
#include "data/synthetic.h"

namespace p3gm {
namespace data {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream f(path);
  f << content;
  return path;
}

TEST(CsvLoaderTest, LoadsBasicFile) {
  const std::string path = WriteTemp("basic.csv",
                                     "a,b,label\n"
                                     "0.0,10,0\n"
                                     "1.0,20,1\n"
                                     "2.0,30,1\n");
  auto d = LoadCsvDataset(path);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 3u);
  EXPECT_EQ(d->dim(), 2u);
  EXPECT_EQ(d->num_classes, 2u);
  EXPECT_EQ(d->labels, (std::vector<std::size_t>{0, 1, 1}));
  // Min-max scaled.
  EXPECT_DOUBLE_EQ(d->features(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d->features(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(d->features(1, 1), 0.5);
}

TEST(CsvLoaderTest, NoHeaderAndNoScaling) {
  const std::string path = WriteTemp("raw.csv", "5,1\n7,0\n");
  CsvLoadOptions opt;
  opt.has_header = false;
  opt.scale_features = false;
  auto d = LoadCsvDataset(path, opt);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->features(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(d->features(1, 0), 7.0);
}

TEST(CsvLoaderTest, CustomLabelColumn) {
  const std::string path = WriteTemp("labelfirst.csv",
                                     "label,x\n1,0.5\n0,0.7\n");
  CsvLoadOptions opt;
  opt.label_column = 0;
  auto d = LoadCsvDataset(path, opt);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->labels, (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(d->dim(), 1u);
}

TEST(CsvLoaderTest, RejectsRaggedRows) {
  const std::string path = WriteTemp("ragged.csv", "a,b\n1,2\n3\n");
  CsvLoadOptions opt;
  EXPECT_FALSE(LoadCsvDataset(path, opt).ok());
}

TEST(CsvLoaderTest, RejectsNonNumericCells) {
  const std::string path = WriteTemp("alpha.csv", "a,b\n1,2\nx,1\n");
  EXPECT_FALSE(LoadCsvDataset(path).ok());
}

TEST(CsvLoaderTest, RejectsNonIntegerLabels) {
  const std::string path = WriteTemp("fraclabel.csv", "a,b\n1,0.5\n");
  EXPECT_FALSE(LoadCsvDataset(path).ok());
}

TEST(CsvLoaderTest, RejectsNegativeLabels) {
  const std::string path = WriteTemp("neglabel.csv", "a,b\n1,-1\n");
  EXPECT_FALSE(LoadCsvDataset(path).ok());
}

TEST(CsvLoaderTest, RejectsMissingFileAndEmptyFile) {
  EXPECT_FALSE(LoadCsvDataset("/nonexistent_p3gm/x.csv").ok());
  const std::string path = WriteTemp("empty.csv", "a,b\n");
  EXPECT_FALSE(LoadCsvDataset(path).ok());
}

TEST(CsvLoaderTest, HandlesCrlfAndBlankLines) {
  const std::string path =
      WriteTemp("crlf.csv", "a,b\r\n1,0\r\n\r\n2,1\r\n");
  auto d = LoadCsvDataset(path);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2u);
}

TEST(CsvLoaderTest, SaveLoadRoundTrip) {
  Dataset original = MakeAdultLike(200, 7);
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(SaveCsvDataset(original, path).ok());
  CsvLoadOptions opt;
  opt.scale_features = false;  // Already scaled; avoid double scaling.
  auto back = LoadCsvDataset(path, opt);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), original.size());
  EXPECT_EQ(back->dim(), original.dim());
  EXPECT_EQ(back->labels, original.labels);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < original.features.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(back->features.data()[i] -
                                  original.features.data()[i]));
  }
  EXPECT_LT(max_diff, 1e-8);  // %.9g round trip.
}

TEST(CsvLoaderTest, SaveRejectsEmpty) {
  EXPECT_FALSE(SaveCsvDataset(Dataset{}, "/tmp/x.csv").ok());
}

}  // namespace
}  // namespace data
}  // namespace p3gm
