// Hardening tests for the serve HTTP/JSON boundary: a table-driven
// malformed-input corpus for the incremental HttpParser, the strict
// UTF-8 validator, and the sample-request JSON schema (including
// deeply nested payloads, which must be rejected by the depth-limited
// parser rather than recursing to a crash). These run under ASan/UBSan
// in the sanitizer CI config: the contract is "4xx status, never a
// crash" for every byte sequence here.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/api.h"
#include "serve/http.h"

namespace p3gm {
namespace serve {
namespace {

// ---------------------------------------------------------------------
// HttpParser: well-formed messages.

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser parser;
  parser.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_TRUE(parser.request().KeepAlive());
}

TEST(HttpParser, ParsesBodyWithContentLength) {
  HttpParser parser;
  parser.Feed("POST /v1/sample HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpParser, IncrementalOneByteAtATime) {
  const std::string wire =
      "POST /v1/sample HTTP/1.1\r\nContent-Length: 2\r\nX-Extra: v\r\n\r\nhi";
  HttpParser parser;
  for (char c : wire) {
    ASSERT_FALSE(parser.failed());
    parser.Feed(&c, 1);
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "hi");
  const std::string* extra = parser.request().FindHeader("x-extra");
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, "v");
}

TEST(HttpParser, PipelinedRequestsSurviveReset) {
  HttpParser parser;
  parser.Feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/a");
  parser.ResetForNext();
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/b");
  parser.ResetForNext();
  EXPECT_FALSE(parser.done());
  EXPECT_FALSE(parser.failed());
}

TEST(HttpParser, ConnectionCloseDisablesKeepAlive) {
  HttpParser parser;
  parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().KeepAlive());
}

TEST(HttpParser, Http10DefaultsToClose) {
  HttpParser parser;
  parser.Feed("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().KeepAlive());
}

// ---------------------------------------------------------------------
// HttpParser: malformed-input corpus. Each entry must produce the given
// 4xx/5xx status without crashing, regardless of how bytes are chunked.

struct MalformedCase {
  const char* name;
  std::string wire;
  int want_status;
};

std::vector<MalformedCase> MalformedCorpus() {
  std::vector<MalformedCase> cases = {
      {"bare_lf_request_line", "GET / HTTP/1.1\n\r\n\r\n", 400},
      {"missing_target", "GET HTTP/1.1\r\n\r\n", 400},
      {"three_spaces", "GET /  HTTP/1.1\r\n\r\n", 400},
      {"bad_version", "GET / HTTP/2.0\r\n\r\n", 400},
      {"lowercase_method_ok_but_bad_version", "get / HTTQ/1.1\r\n\r\n", 400},
      {"ctl_in_target", std::string("GET /a\x01" "b HTTP/1.1\r\n\r\n"), 400},
      {"header_without_colon", "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
      {"space_before_colon", "GET / HTTP/1.1\r\nKey : v\r\n\r\n", 400},
      {"ctl_in_header_value",
       std::string("GET / HTTP/1.1\r\nKey: a\x02" "b\r\n\r\n"), 400},
      {"empty_header_name", "GET / HTTP/1.1\r\n: v\r\n\r\n", 400},
      {"content_length_not_numeric",
       "POST / HTTP/1.1\r\nContent-Length: 12a\r\n\r\n", 400},
      {"content_length_negative",
       "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400},
      {"content_length_overflow",
       "POST / HTTP/1.1\r\nContent-Length: "
       "99999999999999999999999999\r\n\r\n",
       400},
      {"content_length_conflicting",
       "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n",
       400},
      {"content_length_oversized",
       "POST / HTTP/1.1\r\nContent-Length: 10485760\r\n\r\n", 413},
      {"transfer_encoding_chunked",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
  };
  // Oversized request line (> 8 KiB of target).
  cases.push_back({"request_line_too_long",
                   "GET /" + std::string(9000, 'a') + " HTTP/1.1\r\n\r\n",
                   414});
  // Header block over the 16 KiB cap.
  std::string big_headers = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 200; ++i) {
    big_headers += "X-H" + std::to_string(i) + ": " + std::string(100, 'v') +
                   "\r\n";
  }
  big_headers += "\r\n";
  cases.push_back({"header_block_too_large", big_headers, 431});
  // Too many headers (> 64) within the byte budget.
  std::string many_headers = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 80; ++i) {
    many_headers += "X-" + std::to_string(i) + ": v\r\n";
  }
  many_headers += "\r\n";
  cases.push_back({"too_many_headers", many_headers, 431});
  return cases;
}

TEST(HttpParserMalformed, WholeCorpusFedAtOnce) {
  for (const MalformedCase& c : MalformedCorpus()) {
    HttpParser parser;
    parser.Feed(c.wire);
    EXPECT_TRUE(parser.failed()) << c.name;
    EXPECT_EQ(parser.error_status(), c.want_status) << c.name;
    EXPECT_FALSE(parser.error_message().empty()) << c.name;
  }
}

TEST(HttpParserMalformed, WholeCorpusFedByteByByte) {
  for (const MalformedCase& c : MalformedCorpus()) {
    HttpParser parser;
    for (char byte : c.wire) {
      parser.Feed(&byte, 1);
      if (parser.failed()) break;
    }
    EXPECT_TRUE(parser.failed()) << c.name;
    EXPECT_EQ(parser.error_status(), c.want_status) << c.name;
  }
}

TEST(HttpParserMalformed, TruncatedHeadersNeverComplete) {
  // Prefixes of a valid request must neither complete nor fail — the
  // parser just waits for more bytes (the connection-level read timeout
  // is the server's concern, not the parser's).
  const std::string wire =
      "POST /v1/sample HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  for (std::size_t cut = 0; cut + 1 < wire.size(); ++cut) {
    HttpParser parser;
    parser.Feed(wire.substr(0, cut));
    EXPECT_FALSE(parser.done()) << "cut=" << cut;
    EXPECT_FALSE(parser.failed()) << "cut=" << cut;
  }
}

TEST(HttpParserMalformed, GarbageBytesDoNotCrash) {
  // Every 1-byte value in each structural position; assert only
  // "no crash, no false completion of a body".
  std::string base = "GET / HTTP/1.1\r\n\r\n";
  for (int b = 0; b < 256; ++b) {
    for (std::size_t pos = 0; pos < base.size(); ++pos) {
      std::string wire = base;
      wire[pos] = static_cast<char>(b);
      HttpParser parser;
      parser.Feed(wire);
      // done() or failed() are both acceptable; hanging in kBody with a
      // huge expectation is not.
      if (parser.state() == HttpParser::State::kBody) {
        ADD_FAILURE() << "byte " << b << " at pos " << pos
                      << " put parser into kBody for a GET";
      }
    }
  }
}

// ---------------------------------------------------------------------
// HttpResponse serialization.

TEST(HttpResponse, SerializesStatusHeadersAndLength) {
  HttpResponse response;
  response.status = 503;
  response.body = "{}";
  response.extra_headers.emplace_back("Retry-After", "1");
  response.close_connection = true;
  const std::string wire = response.Serialize();
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 6), "\r\n\r\n{}");
}

// ---------------------------------------------------------------------
// UTF-8 validation.

TEST(Utf8Valid, AcceptsWellFormed) {
  EXPECT_TRUE(Utf8Valid(""));
  EXPECT_TRUE(Utf8Valid("plain ascii"));
  EXPECT_TRUE(Utf8Valid("caf\xc3\xa9"));                  // U+00E9.
  EXPECT_TRUE(Utf8Valid("\xe2\x82\xac"));                 // U+20AC.
  EXPECT_TRUE(Utf8Valid("\xf0\x9f\x98\x80"));             // U+1F600.
  EXPECT_TRUE(Utf8Valid(std::string("nul\0byte", 8)));    // NUL is valid.
}

TEST(Utf8Valid, RejectsMalformed) {
  EXPECT_FALSE(Utf8Valid("\x80"));               // Lone continuation.
  EXPECT_FALSE(Utf8Valid("\xc3"));               // Truncated 2-byte.
  EXPECT_FALSE(Utf8Valid("\xe2\x82"));           // Truncated 3-byte.
  EXPECT_FALSE(Utf8Valid("\xf0\x9f\x98"));       // Truncated 4-byte.
  EXPECT_FALSE(Utf8Valid("\xc0\xaf"));           // Overlong '/'.
  EXPECT_FALSE(Utf8Valid("\xe0\x80\xaf"));       // Overlong 3-byte.
  EXPECT_FALSE(Utf8Valid("\xf0\x80\x80\xaf"));   // Overlong 4-byte.
  EXPECT_FALSE(Utf8Valid("\xed\xa0\x80"));       // Surrogate U+D800.
  EXPECT_FALSE(Utf8Valid("\xf4\x90\x80\x80"));   // Above U+10FFFF.
  EXPECT_FALSE(Utf8Valid("\xfe"));               // Invalid lead byte.
  EXPECT_FALSE(Utf8Valid("\xff\xff"));
  EXPECT_FALSE(Utf8Valid("a\xc3(b"));            // Bad continuation.
}

// ---------------------------------------------------------------------
// Sample-request schema.

TEST(ParseSampleRequest, AcceptsMinimal) {
  auto req = ParseSampleRequest("{\"model\": \"m\", \"n\": 5}", 100);
  ASSERT_TRUE(req.ok()) << req.status();
  EXPECT_EQ(req->model, "m");
  EXPECT_EQ(req->n, 5u);
  EXPECT_FALSE(req->has_seed);
  EXPECT_FALSE(req->fresh);
}

TEST(ParseSampleRequest, AcceptsSeedAndFresh) {
  auto req = ParseSampleRequest(
      "{\"model\": \"m\", \"n\": 2, \"seed\": 123, \"fresh\": true}", 100);
  ASSERT_TRUE(req.ok()) << req.status();
  EXPECT_TRUE(req->has_seed);
  EXPECT_EQ(req->seed, 123u);
  EXPECT_TRUE(req->fresh);
}

TEST(ParseSampleRequest, RejectsBadInputs) {
  const std::size_t max_n = 100;
  const char* bad[] = {
      "",                                       // Empty body.
      "not json",                               // Not JSON.
      "[1, 2]",                                 // Not an object.
      "{\"n\": 5}",                             // Missing model.
      "{\"model\": 3, \"n\": 5}",               // Model not a string.
      "{\"model\": \"\", \"n\": 5}",            // Empty model.
      "{\"model\": \"m\"}",                     // Missing n.
      "{\"model\": \"m\", \"n\": 0}",           // n = 0.
      "{\"model\": \"m\", \"n\": -3}",          // Negative.
      "{\"model\": \"m\", \"n\": 2.5}",         // Non-integral.
      "{\"model\": \"m\", \"n\": \"5\"}",       // String n.
      "{\"model\": \"m\", \"n\": 5, \"seed\": 1.5}",    // Bad seed.
      "{\"model\": \"m\", \"n\": 5, \"fresh\": 1}",     // Bad fresh.
      "{\"model\": \"m\", \"n\": 5",            // Truncated JSON.
  };
  for (const char* body : bad) {
    auto req = ParseSampleRequest(body, max_n);
    EXPECT_FALSE(req.ok()) << "body: " << body;
  }
}

TEST(ParseSampleRequest, RejectsNOverMax) {
  auto req = ParseSampleRequest("{\"model\": \"m\", \"n\": 101}", 100);
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), util::StatusCode::kOutOfRange);
}

TEST(ParseSampleRequest, RejectsInvalidUtf8Body) {
  auto req = ParseSampleRequest("{\"model\": \"\xc3(\", \"n\": 5}", 100);
  EXPECT_FALSE(req.ok());
}

TEST(ParseSampleRequest, RejectsDeeplyNestedJson) {
  // 500 nesting levels — far beyond the JSON parser's depth limit. Must
  // return InvalidArgument, not overflow the stack.
  std::string body = "{\"model\": \"m\", \"n\": 5, \"x\": ";
  for (int i = 0; i < 500; ++i) body += "[";
  for (int i = 0; i < 500; ++i) body += "]";
  body += "}";
  auto req = ParseSampleRequest(body, 100);
  EXPECT_FALSE(req.ok());
}

TEST(ErrorJson, EscapesMessage) {
  EXPECT_EQ(ErrorJson("a \"b\"\n"), "{\"error\": \"a \\\"b\\\"\\n\"}");
}

}  // namespace
}  // namespace serve
}  // namespace p3gm
