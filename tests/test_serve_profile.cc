// End-to-end tests for the serving-path profiling surface: GET
// /v1/profile under concurrent sample load (the acceptance scenario —
// folded stacks with identifiable decoder/serve frames), the 503
// single-profiler admission gate, parameter validation, GET
// /v1/profile/heap, and the p3gm_process_* gauges on /v1/metrics. The
// `threads` label runs this suite under TSan, which is the
// signal-handler-vs-event-loop race audit.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/observability.h"
#include "obs/perf/alloc.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve_test_util.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define P3GM_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define P3GM_UNDER_SANITIZER 1
#endif
#endif
#ifndef P3GM_UNDER_SANITIZER
#define P3GM_UNDER_SANITIZER 0
#endif

namespace p3gm {
namespace serve {
namespace {

using serve_test::MakePackage;
using serve_test::TempDir;

// Starts a server over one freshly written package and returns it
// ready to accept connections.
class ServeProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Global().Reset();
    path_ = dir_.WritePackage(MakePackage("alpha"), "alpha");
    ServerOptions options;
    options.port = 0;
    options.max_batch = 8;
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->Init({path_}).ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  TempDir dir_;
  std::string path_;
  std::unique_ptr<Server> server_;
};

// Checks that `text` parses as folded-stack lines ("a;b;c 12\n"),
// returning the number of lines.
int CountFoldedLines(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_FALSE(line.empty());
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos) continue;
    for (const char c : line.substr(space + 1)) {
      EXPECT_TRUE(c >= '0' && c <= '9') << line;
    }
    ++parsed;
  }
  return parsed;
}

TEST_F(ServeProfileTest, ProfileUnderLoadCapturesServePath) {
  // 8 clients hammer /v1/sample for the whole profiling window so the
  // event loop / batcher / decoder are what SIGPROF lands on.
  std::atomic<bool> stop{false};
  std::atomic<int> ok_responses{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      int r = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int n = 1 + (c + r++) % 16;
        auto response = client.Post(
            "/v1/sample",
            "{\"model\": \"alpha\", \"n\": " + std::to_string(n) +
                ", \"fresh\": true}");
        if (!response.ok()) {
          if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
          continue;
        }
        if (response->status == 200) ok_responses.fetch_add(1);
      }
    });
  }

  HttpClient profiler_client;
  ASSERT_TRUE(
      profiler_client.Connect("127.0.0.1", server_->port()).ok());
  auto response =
      profiler_client.Get("/v1/profile?seconds=1&hz=499");
  stop.store(true);
  for (std::thread& t : clients) t.join();

  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200) << response->body;
  const std::string* content_type = response->FindHeader("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_NE(content_type->find("text/plain"), std::string::npos);
  const std::string* samples = response->FindHeader("X-Profile-Samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_GT(std::stoull(*samples), 0u);
  ASSERT_NE(response->FindHeader("X-Profile-Hz"), nullptr);
  EXPECT_EQ(*response->FindHeader("X-Profile-Hz"), "499");
  EXPECT_GT(CountFoldedLines(response->body), 0);
  EXPECT_GT(ok_responses.load(), 0);

#if !P3GM_UNDER_SANITIZER
  // The acceptance criterion: serving-path frames are identifiable by
  // name in the folded output. With one second of saturated decode
  // traffic, decoder execution and the serve dispatch path dominate.
  const bool has_serve_frame =
      response->body.find("p3gm::serve::") != std::string::npos ||
      response->body.find("p3gm::infer::") != std::string::npos ||
      response->body.find("p3gm::nn::") != std::string::npos ||
      response->body.find("p3gm::linalg::") != std::string::npos;
  EXPECT_TRUE(has_serve_frame) << response->body;
#endif
}

TEST_F(ServeProfileTest, ConcurrentProfileIsRejectedBusy) {
  HttpClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server_->port()).ok());
  std::thread long_profile([&] {
    auto response = first.Get("/v1/profile?seconds=2&hz=99");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200) << response->body;
  });
  // Give the first request time to reach the admission gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  HttpClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server_->port()).ok());
  auto busy = second.Get("/v1/profile?seconds=1");
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->status, 503) << busy->body;
  ASSERT_NE(busy->FindHeader("Retry-After"), nullptr);

  long_profile.join();
}

TEST_F(ServeProfileTest, RejectsBadParameters) {
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (const char* target :
       {"/v1/profile?seconds=0", "/v1/profile?seconds=61",
        "/v1/profile?seconds=abc", "/v1/profile?hz=0",
        "/v1/profile?hz=1001", "/v1/profile?hz=fast"}) {
    auto response = client.Get(target);
    ASSERT_TRUE(response.ok()) << target;
    EXPECT_EQ(response->status, 400) << target << ": " << response->body;
  }
  // Rejections must not leave the admission gate stuck busy.
  auto good = client.Get("/v1/profile?seconds=1&hz=99");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->status, 200) << good->body;
}

TEST_F(ServeProfileTest, HeapProfileEndpoint) {
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // Allocate through the decoder first so the heap table has entries.
  auto warm = client.Post("/v1/sample",
                          "{\"model\": \"alpha\", \"n\": 16}");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->status, 200);

  auto response = client.Get("/v1/profile/heap");
  ASSERT_TRUE(response.ok());
  if (!obs::perf::AllocTrackingCompiledIn()) {
    EXPECT_EQ(response->status, 501) << response->body;
    return;
  }
  // Server::Start auto-starts the heap profiler in tracking builds.
  ASSERT_EQ(response->status, 200) << response->body;
  ASSERT_NE(response->FindHeader("X-Profile-Stride-Bytes"), nullptr);
  CountFoldedLines(response->body);
}

TEST_F(ServeProfileTest, MetricsExposeProcessGauges) {
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto response = client.Get("/v1/metrics?format=prometheus");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  for (const char* name :
       {"p3gm_process_resident_memory_bytes",
        "p3gm_process_virtual_memory_bytes", "p3gm_process_open_fds",
        "p3gm_process_cpu_seconds_total",
        "p3gm_process_start_time_seconds", "p3gm_process_threads"}) {
    EXPECT_NE(response->body.find(name), std::string::npos) << name;
  }
  if (obs::perf::AllocTrackingCompiledIn()) {
    EXPECT_NE(response->body.find("p3gm_alloc_live_bytes"),
              std::string::npos);
    EXPECT_NE(response->body.find("p3gm_alloc_alloc_count"),
              std::string::npos);
  }
}

// Alloc-tracker balance across a sampled window: the CPU profiler's
// handler allocates nothing, so the live-bytes delta over a
// request-quiet sampling window is zero. (Trivially true when tracking
// is compiled out; the tracking CI leg gives it teeth.)
TEST_F(ServeProfileTest, SamplingLeavesAllocCountersBalanced) {
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto first = client.Get("/v1/profile?seconds=1&hz=499");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->status, 200);

  // Second window with no traffic at all: the server is idle in epoll,
  // only SIGPROF fires. Allocation before/after must balance to zero
  // live delta from the handler itself (response assembly allocates,
  // so measure on the server side via a quiet window and the tracker's
  // own invariant instead of exact equality).
  const obs::perf::AllocStats before = obs::perf::CurrentAllocStats();
  auto second = client.Get("/v1/profile?seconds=1&hz=499");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->status, 200);
  const obs::perf::AllocStats after = obs::perf::CurrentAllocStats();
  // The tracker never goes inconsistent under signal load.
  EXPECT_GE(after.alloc_count, before.alloc_count);
  EXPECT_GE(after.bytes_allocated, before.bytes_allocated);
  EXPECT_LE(after.live_bytes, after.peak_live_bytes);
}

}  // namespace
}  // namespace serve
}  // namespace p3gm
