// QualityMonitor suite (obs/quality/monitor.h): stride subsampling
// bookkeeping, fingerprint-less operation, drift scoring for clean and
// shifted streams, label total-variation, and memory accounting.

#include <cstdint>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "linalg/matrix.h"
#include "obs/quality/fingerprint.h"
#include "obs/quality/monitor.h"

namespace p3gm {
namespace obs {
namespace quality {
namespace {

linalg::Matrix UniformMatrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed, double shift = 0.0) {
  linalg::Matrix m(rows, cols);
  std::uint64_t state = seed;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      m(r, c) = static_cast<double>(state >> 11) /
                    static_cast<double>(1ULL << 53) +
                shift;
    }
  }
  return m;
}

std::shared_ptr<const Fingerprint> ReferenceFingerprint(std::size_t dim) {
  return std::make_shared<const Fingerprint>(Fingerprint::FromDecoded(
      UniformMatrix(4096, dim, /*seed=*/100), /*num_classes=*/0, /*seed=*/1));
}

TEST(QualityMonitor, StrideSubsamplesOnGlobalRowCounter) {
  MonitorOptions options;
  options.stride = 4;
  QualityMonitor monitor(nullptr, /*feature_dim=*/2, /*num_classes=*/0,
                         options);
  // Two batches of 10: absolute row indices 0..19, multiples of 4 in
  // [0, 20) are 0, 4, 8, 12, 16 — the phase carries across batches.
  monitor.ObserveDecoded(UniformMatrix(10, 2, 1));
  monitor.ObserveDecoded(UniformMatrix(10, 2, 2));
  EXPECT_EQ(monitor.rows_seen(), 20u);
  EXPECT_EQ(monitor.Score().rows_observed, 5u);
}

TEST(QualityMonitor, WidthMismatchIsIgnored) {
  QualityMonitor monitor(nullptr, /*feature_dim=*/3, /*num_classes=*/2);
  monitor.ObserveDecoded(UniformMatrix(8, 4, 1));  // Want 3 + 2 = 5 cols.
  EXPECT_EQ(monitor.rows_seen(), 0u);
  EXPECT_EQ(monitor.Score().rows_observed, 0u);
}

TEST(QualityMonitor, NullFingerprintAccumulatesButDoesNotScore) {
  MonitorOptions options;
  options.stride = 1;
  QualityMonitor monitor(nullptr, /*feature_dim=*/2, /*num_classes=*/0,
                         options);
  monitor.ObserveDecoded(UniformMatrix(50, 2, 3));
  const DriftReport report = monitor.Score();
  EXPECT_FALSE(report.has_fingerprint);
  EXPECT_EQ(report.rows_observed, 50u);
  EXPECT_EQ(report.drift(), 0.0);
  // Live marginals are still tracked for /v1/quality display.
  ASSERT_EQ(report.features.size(), 2u);
  EXPECT_GT(report.features[0].live_stddev, 0.0);
}

TEST(QualityMonitor, CleanStreamScoresLowDrift) {
  const std::size_t dim = 3;
  MonitorOptions options;
  options.stride = 1;
  QualityMonitor monitor(ReferenceFingerprint(dim), dim, /*num_classes=*/0,
                         options);
  // Same distribution, different draw.
  monitor.ObserveDecoded(UniformMatrix(2000, dim, /*seed=*/55));
  const DriftReport report = monitor.Score();
  ASSERT_TRUE(report.has_fingerprint);
  EXPECT_LT(report.drift(), 0.1);
  EXPECT_LT(report.mean_z_max, 0.5);
}

TEST(QualityMonitor, ShiftedStreamScoresHighDrift) {
  const std::size_t dim = 3;
  MonitorOptions options;
  options.stride = 1;
  QualityMonitor monitor(ReferenceFingerprint(dim), dim, /*num_classes=*/0,
                         options);
  // A 0.25 location shift on a [0, 1] uniform moves ~25% of the mass
  // past any fixed cut — far beyond sketch + sampling error.
  monitor.ObserveDecoded(UniformMatrix(2000, dim, /*seed=*/55,
                                       /*shift=*/0.25));
  const DriftReport report = monitor.Score();
  ASSERT_TRUE(report.has_fingerprint);
  EXPECT_GT(report.drift(), 0.15);
  EXPECT_GT(report.mean_z_max, 0.5);
}

TEST(QualityMonitor, LabelShiftShowsInTotalVariation) {
  // Reference: balanced labels. Live: all class 0.
  const std::size_t rows = 600, dim = 2, classes = 2;
  linalg::Matrix reference(rows, dim + classes, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    reference(r, 0) = 0.5;
    reference(r, 1) = 0.5;
    reference(r, dim + (r % 2)) = 1.0;
  }
  auto fingerprint = std::make_shared<const Fingerprint>(
      Fingerprint::FromDecoded(reference, classes, /*seed=*/1));

  linalg::Matrix live(rows, dim + classes, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    live(r, 0) = 0.5;
    live(r, 1) = 0.5;
    live(r, dim) = 1.0;  // Every row argmaxes to class 0.
  }
  MonitorOptions options;
  options.stride = 1;
  QualityMonitor monitor(fingerprint, dim, classes, options);
  monitor.ObserveDecoded(live);
  const DriftReport report = monitor.Score();
  EXPECT_NEAR(report.label_tv, 0.5, 1e-9);
  EXPECT_GE(report.drift(), 0.5 - 1e-9);
}

TEST(QualityMonitor, ObserveDatasetFoldsEveryRow) {
  const std::size_t dim = 2;
  MonitorOptions options;
  options.stride = 16;  // Dataset path ignores the stride.
  QualityMonitor monitor(ReferenceFingerprint(dim), dim, /*num_classes=*/2,
                         options);
  std::vector<std::size_t> labels(120, 1);
  monitor.ObserveDataset(UniformMatrix(120, dim, 9), labels);
  EXPECT_EQ(monitor.Score().rows_observed, 120u);
}

TEST(QualityMonitor, MemoryStaysBoundedOverLongStreams) {
  MonitorOptions options;
  options.stride = 1;
  QualityMonitor monitor(nullptr, /*feature_dim=*/4, /*num_classes=*/2,
                         options);
  for (int i = 0; i < 10; ++i) {
    monitor.ObserveDecoded(UniformMatrix(5000, 6, 1 + i));
  }
  const std::size_t at_50k = monitor.MemoryBytes();
  for (int i = 0; i < 10; ++i) {
    monitor.ObserveDecoded(UniformMatrix(5000, 6, 11 + i));
  }
  // Fixed-memory contract: the absolute footprint stays tiny, and
  // doubling the stream adds at most one compaction level per sketch
  // (logarithmic growth), nowhere near doubling the bytes.
  EXPECT_LT(at_50k, static_cast<std::size_t>(256 * 1024));
  EXPECT_LT(monitor.MemoryBytes(),
            at_50k + at_50k / 4);
}

}  // namespace
}  // namespace quality
}  // namespace obs
}  // namespace p3gm
