#include <cmath>

#include "gtest/gtest.h"
#include "stats/discretizer.h"
#include "stats/mutual_information.h"
#include "util/rng.h"

namespace p3gm {
namespace stats {
namespace {

TEST(DiscretizerTest, ValidatesInput) {
  EXPECT_FALSE(Discretizer::Fit(linalg::Matrix(), 4).ok());
  EXPECT_FALSE(Discretizer::Fit(linalg::Matrix(2, 2, 0.0), 0).ok());
}

TEST(DiscretizerTest, EncodesRangeEndpoints) {
  linalg::Matrix x = {{0.0}, {1.0}};
  auto d = Discretizer::Fit(x, 4);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->Encode(0, 0.0), 0u);
  EXPECT_EQ(d->Encode(0, 0.24), 0u);
  EXPECT_EQ(d->Encode(0, 0.26), 1u);
  EXPECT_EQ(d->Encode(0, 1.0), 3u);  // Max clamps to last bin.
  EXPECT_EQ(d->Encode(0, 5.0), 3u);  // Out of range clamps.
  EXPECT_EQ(d->Encode(0, -5.0), 0u);
}

TEST(DiscretizerTest, ConstantColumnIsSingleBin) {
  linalg::Matrix x = {{3.0}, {3.0}};
  auto d = Discretizer::Fit(x, 8);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->Encode(0, 3.0), 0u);
  util::Rng rng(3);
  EXPECT_DOUBLE_EQ(d->Decode(0, 0, &rng), 3.0);
}

TEST(DiscretizerTest, DecodeFallsInsideBin) {
  linalg::Matrix x = {{0.0}, {8.0}};
  auto d = Discretizer::Fit(x, 8);
  ASSERT_TRUE(d.ok());
  util::Rng rng(5);
  for (std::size_t bin = 0; bin < 8; ++bin) {
    for (int t = 0; t < 20; ++t) {
      const double v = d->Decode(0, bin, &rng);
      EXPECT_GE(v, static_cast<double>(bin));
      EXPECT_LT(v, static_cast<double>(bin) + 1.0);
    }
  }
}

TEST(DiscretizerTest, TransformInverseRoundTripPreservesBins) {
  util::Rng rng(7);
  linalg::Matrix x(100, 3);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Uniform();
  auto d = Discretizer::Fit(x, 6);
  ASSERT_TRUE(d.ok());
  auto codes = d->Transform(x);
  util::Rng rng2(11);
  linalg::Matrix decoded = d->InverseTransform(codes, &rng2);
  auto codes2 = d->Transform(decoded);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(codes[i], codes2[i]);
  }
}

// --------------------------------------------------- Mutual information

TEST(MutualInformationTest, EncodeTuple) {
  EXPECT_EQ(EncodeTuple({}, {}), 0u);
  EXPECT_EQ(EncodeTuple({1, 2}, {3, 4}), 1u * 4 + 2);
  EXPECT_EQ(EncodeTuple({2, 3}, {3, 4}), 2u * 4 + 3);
}

TEST(MutualInformationTest, IndependentColumnsNearZero) {
  util::Rng rng(13);
  std::vector<int> a(5000), b(5000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(rng.UniformInt(4));
    b[i] = static_cast<int>(rng.UniformInt(4));
  }
  EXPECT_LT(MutualInformation(a, b, 4, 4), 0.01);
}

TEST(MutualInformationTest, IdenticalColumnsEqualEntropy) {
  util::Rng rng(17);
  std::vector<int> a(5000);
  for (int& v : a) v = static_cast<int>(rng.UniformInt(4));
  // I(A; A) = H(A) = log 4 for uniform.
  EXPECT_NEAR(MutualInformation(a, a, 4, 4), std::log(4.0), 0.01);
}

TEST(MutualInformationTest, DeterministicFunctionFullInfo) {
  std::vector<int> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(i % 3);
    b.push_back((i % 3 + 1) % 3);  // Bijective map of a.
  }
  EXPECT_NEAR(MutualInformation(a, b, 3, 3), std::log(3.0), 1e-5);
}

TEST(MutualInformationTest, NonNegative) {
  util::Rng rng(19);
  for (int t = 0; t < 20; ++t) {
    std::vector<int> a(200), b(200);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<int>(rng.UniformInt(3));
      b[i] = rng.Bernoulli(0.3) ? a[i] : static_cast<int>(rng.UniformInt(3));
    }
    EXPECT_GE(MutualInformation(a, b, 3, 3), 0.0);
  }
}

TEST(MutualInformationTest, ParentsIncreaseInformation) {
  // x = xor-ish function of two parents; either parent alone gives less
  // information than both.
  util::Rng rng(23);
  const std::size_t n = 4000;
  std::vector<std::vector<int>> cols(3, std::vector<int>(n));
  for (std::size_t i = 0; i < n; ++i) {
    cols[0][i] = static_cast<int>(rng.UniformInt(2));
    cols[1][i] = static_cast<int>(rng.UniformInt(2));
    cols[2][i] = cols[0][i] ^ cols[1][i];
  }
  std::vector<std::size_t> cards = {2, 2, 2};
  const double single =
      MutualInformationWithParents(cols, cards, 2, {0});
  const double both =
      MutualInformationWithParents(cols, cards, 2, {0, 1});
  EXPECT_LT(single, 0.01);
  EXPECT_NEAR(both, std::log(2.0), 0.01);
}

TEST(MutualInformationTest, EmptyParentSetIsZero) {
  std::vector<std::vector<int>> cols = {{0, 1, 0, 1}};
  EXPECT_DOUBLE_EQ(MutualInformationWithParents(cols, {2}, 0, {}), 0.0);
}

}  // namespace
}  // namespace stats
}  // namespace p3gm
