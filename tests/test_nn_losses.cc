#include <cmath>

#include "gtest/gtest.h"
#include "nn/activations.h"
#include "nn/losses.h"
#include "util/rng.h"

namespace p3gm {
namespace nn {
namespace {

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c, util::Rng* rng) {
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal();
  return m;
}

// ------------------------------------------------------------------- MSE

TEST(MseTest, ZeroAtTarget) {
  linalg::Matrix p = {{1, 2}};
  auto loss = MseLoss(p, p);
  EXPECT_DOUBLE_EQ(loss.value, 0.0);
  EXPECT_DOUBLE_EQ(loss.grad.MaxAbs(), 0.0);
}

TEST(MseTest, KnownValueAndGrad) {
  linalg::Matrix pred = {{2.0}};
  linalg::Matrix target = {{0.0}};
  auto loss = MseLoss(pred, target);
  EXPECT_DOUBLE_EQ(loss.value, 4.0);
  EXPECT_DOUBLE_EQ(loss.grad(0, 0), 4.0);
}

TEST(MseTest, GradientMatchesFiniteDifference) {
  util::Rng rng(3);
  linalg::Matrix pred = RandomMatrix(3, 4, &rng);
  linalg::Matrix target = RandomMatrix(3, 4, &rng);
  auto loss = MseLoss(pred, target);
  const double h = 1e-6;
  for (std::size_t k = 0; k < pred.size(); ++k) {
    linalg::Matrix pp = pred, pm = pred;
    pp.data()[k] += h;
    pm.data()[k] -= h;
    const double num =
        (MseLoss(pp, target).value - MseLoss(pm, target).value) / (2 * h);
    EXPECT_NEAR(loss.grad.data()[k], num, 1e-5);
  }
}

TEST(MseTest, MeanVsSumScaling) {
  util::Rng rng(5);
  linalg::Matrix pred = RandomMatrix(4, 2, &rng);
  linalg::Matrix target = RandomMatrix(4, 2, &rng);
  auto mean = MseLoss(pred, target, true);
  auto sum = MseLoss(pred, target, false);
  EXPECT_NEAR(sum.value, 4.0 * mean.value, 1e-9);
  EXPECT_NEAR(sum.grad(0, 0), 4.0 * mean.grad(0, 0), 1e-9);
}

// ------------------------------------------------------------------- BCE

TEST(BceTest, PerfectPredictionNearZeroLoss) {
  linalg::Matrix logits = {{30.0, -30.0}};
  linalg::Matrix target = {{1.0, 0.0}};
  auto loss = BceWithLogitsLoss(logits, target);
  EXPECT_NEAR(loss.value, 0.0, 1e-9);
}

TEST(BceTest, KnownValueAtZeroLogit) {
  linalg::Matrix logits = {{0.0}};
  linalg::Matrix target = {{1.0}};
  // softplus(0) - 1*0 = log 2.
  EXPECT_NEAR(BceWithLogitsLoss(logits, target).value, std::log(2.0), 1e-12);
}

TEST(BceTest, GradIsSigmoidMinusTarget) {
  linalg::Matrix logits = {{1.3}};
  linalg::Matrix target = {{0.2}};
  auto loss = BceWithLogitsLoss(logits, target);
  EXPECT_NEAR(loss.grad(0, 0), SigmoidScalar(1.3) - 0.2, 1e-12);
}

TEST(BceTest, GradientMatchesFiniteDifference) {
  util::Rng rng(7);
  linalg::Matrix logits = RandomMatrix(3, 4, &rng);
  linalg::Matrix target(3, 4);
  for (std::size_t i = 0; i < target.size(); ++i) {
    target.data()[i] = rng.Uniform();
  }
  auto loss = BceWithLogitsLoss(logits, target);
  const double h = 1e-6;
  for (std::size_t k = 0; k < logits.size(); ++k) {
    linalg::Matrix lp = logits, lm = logits;
    lp.data()[k] += h;
    lm.data()[k] -= h;
    const double num = (BceWithLogitsLoss(lp, target).value -
                        BceWithLogitsLoss(lm, target).value) /
                       (2 * h);
    EXPECT_NEAR(loss.grad.data()[k], num, 1e-5);
  }
}

TEST(BceTest, StableAtExtremeLogits) {
  linalg::Matrix logits = {{1000.0, -1000.0}};
  linalg::Matrix target = {{0.0, 1.0}};
  auto loss = BceWithLogitsLoss(logits, target);
  EXPECT_TRUE(std::isfinite(loss.value));
  EXPECT_NEAR(loss.value, 2000.0, 1.0);
}

// --------------------------------------------------------------- Softmax

TEST(SoftmaxTest, RowsSumToOne) {
  util::Rng rng(11);
  linalg::Matrix logits = RandomMatrix(5, 7, &rng);
  linalg::Matrix p = Softmax(logits);
  for (std::size_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_GE(p(i, j), 0.0);
      s += p(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, StableForLargeLogits) {
  linalg::Matrix p = Softmax({{1000.0, 999.0}});
  EXPECT_TRUE(std::isfinite(p(0, 0)));
  EXPECT_NEAR(p(0, 0), 1.0 / (1.0 + std::exp(-1.0)), 1e-9);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogK) {
  linalg::Matrix logits(2, 4);
  auto loss = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(loss.value, std::log(4.0), 1e-12);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  util::Rng rng(13);
  linalg::Matrix logits = RandomMatrix(3, 5, &rng);
  std::vector<std::size_t> labels = {1, 4, 0};
  auto loss = SoftmaxCrossEntropy(logits, labels);
  const double h = 1e-6;
  for (std::size_t k = 0; k < logits.size(); ++k) {
    linalg::Matrix lp = logits, lm = logits;
    lp.data()[k] += h;
    lm.data()[k] -= h;
    const double num = (SoftmaxCrossEntropy(lp, labels).value -
                        SoftmaxCrossEntropy(lm, labels).value) /
                       (2 * h);
    EXPECT_NEAR(loss.grad.data()[k], num, 1e-5);
  }
}

// ------------------------------------------------------------------- KL

TEST(KlLossTest, ZeroForStandardNormal) {
  linalg::Matrix mu(2, 3);
  linalg::Matrix logvar(2, 3);
  auto kl = StandardNormalKl(mu, logvar);
  EXPECT_NEAR(kl.value, 0.0, 1e-12);
  EXPECT_NEAR(kl.grad_mu.MaxAbs(), 0.0, 1e-12);
  EXPECT_NEAR(kl.grad_logvar.MaxAbs(), 0.0, 1e-12);
}

TEST(KlLossTest, KnownValue) {
  // KL(N(1, 1) || N(0,1)) = 0.5.
  linalg::Matrix mu = {{1.0}};
  linalg::Matrix logvar = {{0.0}};
  EXPECT_NEAR(StandardNormalKl(mu, logvar).value, 0.5, 1e-12);
}

TEST(KlLossTest, NonNegativeEverywhere) {
  util::Rng rng(17);
  for (int t = 0; t < 50; ++t) {
    linalg::Matrix mu = RandomMatrix(1, 4, &rng);
    linalg::Matrix logvar = RandomMatrix(1, 4, &rng);
    EXPECT_GE(StandardNormalKl(mu, logvar).value, -1e-12);
  }
}

TEST(KlLossTest, GradientsMatchFiniteDifference) {
  util::Rng rng(19);
  linalg::Matrix mu = RandomMatrix(2, 3, &rng);
  linalg::Matrix logvar = RandomMatrix(2, 3, &rng);
  auto kl = StandardNormalKl(mu, logvar);
  const double h = 1e-6;
  for (std::size_t k = 0; k < mu.size(); ++k) {
    linalg::Matrix mp = mu, mm = mu;
    mp.data()[k] += h;
    mm.data()[k] -= h;
    const double num = (StandardNormalKl(mp, logvar).value -
                        StandardNormalKl(mm, logvar).value) /
                       (2 * h);
    EXPECT_NEAR(kl.grad_mu.data()[k], num, 1e-5);
    linalg::Matrix lp = logvar, lm = logvar;
    lp.data()[k] += h;
    lm.data()[k] -= h;
    const double num_lv = (StandardNormalKl(mu, lp).value -
                           StandardNormalKl(mu, lm).value) /
                          (2 * h);
    EXPECT_NEAR(kl.grad_logvar.data()[k], num_lv, 1e-5);
  }
}

TEST(KlLossTest, PerExampleSumsToValue) {
  util::Rng rng(23);
  linalg::Matrix mu = RandomMatrix(4, 2, &rng);
  linalg::Matrix logvar = RandomMatrix(4, 2, &rng);
  auto kl = StandardNormalKl(mu, logvar, /*mean=*/true);
  double s = 0.0;
  for (double v : kl.per_example) s += v;
  EXPECT_NEAR(kl.value, s / 4.0, 1e-12);
}

}  // namespace
}  // namespace nn
}  // namespace p3gm
