// End-to-end tests for the serving path's synthesis-quality monitoring
// (docs/observability.md "Synthesis quality"): a real Server on an
// ephemeral port, exercised over TCP. Covers the /v1/quality endpoint,
// the p3gm_quality_* Prometheus gauges, 503 + Retry-After on an empty
// registry, bit-identity of served samples with monitoring on and off,
// and the fault-injected negative control: a decoder whose marginal
// silently shifted MUST trip the drift WARN (with the scraping
// request's trace id) while an unperturbed stream stays quiet.

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "audit/fault_injection.h"
#include "core/release.h"
#include "obs/json.h"
#include "obs/observability.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "util/logging.h"

namespace p3gm {
namespace serve {
namespace {

using serve_test::MakePackage;
using serve_test::TempDir;

class ServeQualityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Global().Reset();
    // Embed a fingerprint at "release time", like `p3gm train` does, so
    // the daemon scores against the package's own reference draw.
    core::ReleasePackage pkg = MakePackage("alpha");
    auto fp = core::BuildFingerprint(pkg, /*n=*/2048, /*seed=*/5);
    ASSERT_TRUE(fp.ok()) << fp.status();
    pkg.SetFingerprint(std::move(*fp));
    pkg_path_ = dir_.WritePackage(pkg, "alpha");
  }

  void TearDown() override { util::SetLogSinkForTest(nullptr); }

  // Quality options tuned so a short test reaches scoreability fast:
  // fold every decoded row and score from 64 rows up.
  static ServerOptions FastQualityOptions() {
    ServerOptions options;
    options.quality.stride = 1;
    options.quality.min_rows = 64;
    return options;
  }

  void StartServer(ServerOptions options,
                   std::vector<std::string> packages) {
    options.port = 0;
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->Init(packages).ok());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  obs::json::Value ParseJson(const std::string& body) {
    obs::json::Value value;
    std::string error;
    EXPECT_TRUE(obs::json::Parse(body, &value, &error))
        << error << " in: " << body;
    return value;
  }

  // Pulls model "alpha"'s entry out of a /v1/quality response body.
  const obs::json::Value* FindAlpha(const obs::json::Value& body) {
    const obs::json::Value* models = body.Find("models");
    if (models == nullptr) return nullptr;
    for (const obs::json::Value& m : models->items) {
      const obs::json::Value* name = m.Find("model");
      if (name != nullptr && name->string_value == "alpha") return &m;
    }
    return nullptr;
  }

  TempDir dir_;
  std::string pkg_path_;
  std::unique_ptr<Server> server_;
  HttpClient client_;
};

TEST_F(ServeQualityTest, QualityEndpointReportsCleanStream) {
  StartServer(FastQualityOptions(), {pkg_path_});
  auto sample = client_.Post("/v1/sample",
                             "{\"model\": \"alpha\", \"n\": 512}");
  ASSERT_TRUE(sample.ok()) << sample.status();
  ASSERT_EQ(sample->status, 200);

  // Scrape past the consecutive-breach window: a clean stream must
  // never breach, let alone warn.
  obs::json::Value body;
  for (int i = 0; i < 4; ++i) {
    auto response = client_.Get("/v1/quality");
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->status, 200);
    body = ParseJson(response->body);
  }
  EXPECT_EQ(body.Find("enabled")->bool_value, true);
  const obs::json::Value* alpha = FindAlpha(body);
  ASSERT_NE(alpha, nullptr) << "no alpha entry";
  EXPECT_TRUE(alpha->Find("has_fingerprint")->bool_value);
  EXPECT_FALSE(alpha->Find("fallback_fingerprint")->bool_value);
  EXPECT_GE(alpha->Find("rows_observed")->number_value, 512.0);
  EXPECT_LT(alpha->Find("drift")->number_value, 0.15);
  EXPECT_FALSE(alpha->Find("breached")->bool_value);
  EXPECT_FALSE(alpha->Find("warn")->bool_value);
  EXPECT_EQ(alpha->Find("breach_streak")->number_value, 0.0);
  // Per-feature detail is present for every feature.
  EXPECT_EQ(alpha->Find("features")->items.size(), 4u);
}

TEST_F(ServeQualityTest, MetricsExposeQualityAndBuildInfoGauges) {
  StartServer(FastQualityOptions(), {pkg_path_});
  auto sample = client_.Post("/v1/sample",
                             "{\"model\": \"alpha\", \"n\": 256}");
  ASSERT_TRUE(sample.ok());
  ASSERT_EQ(sample->status, 200);

  auto response = client_.Get("/v1/metrics?format=prometheus");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  const std::string& text = response->body;
  EXPECT_NE(text.find("p3gm_quality_drift{model=\"alpha\"}"),
            std::string::npos)
      << text.substr(0, 400);
  EXPECT_NE(text.find("p3gm_quality_worst_ks{model=\"alpha\"}"),
            std::string::npos);
  EXPECT_NE(text.find("p3gm_quality_rows_observed{model=\"alpha\"}"),
            std::string::npos);
  // Per-feature series carry both labels (exposition may order them
  // either way).
  const std::size_t feature_line = text.find("p3gm_quality_feature_ks{");
  ASSERT_NE(feature_line, std::string::npos);
  const std::string line =
      text.substr(feature_line, text.find('\n', feature_line) - feature_line);
  EXPECT_NE(line.find("model=\"alpha\""), std::string::npos) << line;
  EXPECT_NE(line.find("feature=\""), std::string::npos) << line;
  // Build-info gauge registered at Start().
  EXPECT_NE(text.find("p3gm_build_info{"), std::string::npos);
}

TEST_F(ServeQualityTest, EmptyRegistryScrapesAnswer503) {
  StartServer(ServerOptions(), {});
  for (const char* path : {"/v1/metrics", "/v1/quality"}) {
    auto response = client_.Get(path);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->status, 503) << path;
    const std::string* retry = response->FindHeader("Retry-After");
    ASSERT_NE(retry, nullptr) << path;
    EXPECT_EQ(*retry, "1");
  }
}

TEST_F(ServeQualityTest, DisabledMonitoringStillAnswersQualityEndpoint) {
  ServerOptions options;
  options.quality.enabled = false;
  StartServer(options, {pkg_path_});
  auto response = client_.Get("/v1/quality");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  obs::json::Value body = ParseJson(response->body);
  EXPECT_EQ(body.Find("enabled")->bool_value, false);
  EXPECT_TRUE(body.Find("models")->items.empty());
}

TEST_F(ServeQualityTest, ServedBytesIdenticalWithMonitoringOnAndOff) {
  // Same package, same explicit seed; the only difference is the
  // monitor. The response bodies must match byte for byte — observation
  // reads the decode buffer, never touches it.
  std::string with_monitoring;
  {
    StartServer(FastQualityOptions(), {pkg_path_});
    auto response = client_.Post(
        "/v1/sample", "{\"model\": \"alpha\", \"n\": 64, \"seed\": 9}");
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200);
    with_monitoring = response->body;
    client_.Close();
    server_->Stop();
  }
  ServerOptions options;
  options.quality.enabled = false;
  StartServer(options, {pkg_path_});
  auto response = client_.Post(
      "/v1/sample", "{\"model\": \"alpha\", \"n\": 64, \"seed\": 9}");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(response->body, with_monitoring);
}

#if P3GM_FAULT_INJECTION_ENABLED
// The negative control: shift one decoder output marginal by a quarter
// of its range and the monitor MUST notice — breach on every scrape,
// WARN once the streak reaches the consecutive threshold, and the WARN
// record must carry the scraping request's trace id.
TEST_F(ServeQualityTest, InjectedDecoderShiftTripsDriftWarn) {
  ServerOptions options = FastQualityOptions();
  StartServer(options, {pkg_path_});

  std::mutex log_mutex;
  std::vector<std::string> warn_records;
  util::SetLogSinkForTest(
      [&](util::LogLevel level, const std::string& record) {
        if (level != util::LogLevel::kWarning) return;
        std::lock_guard<std::mutex> lock(log_mutex);
        warn_records.push_back(record);
      });

  audit::FaultConfig fault;
  fault.decoder_bias_shift = 0.5;
  fault.decoder_bias_feature = 0;
  audit::FaultInjector::Scope scope(fault);

  auto sample = client_.Post("/v1/sample",
                             "{\"model\": \"alpha\", \"n\": 512}");
  ASSERT_TRUE(sample.ok());
  ASSERT_EQ(sample->status, 200);

  // Breach streak builds across scrapes; the third consecutive breach
  // crosses QualityOptions::consecutive (3) and warns.
  std::string scrape_request_id;
  obs::json::Value body;
  for (int i = 0; i < 3; ++i) {
    auto response = client_.Get("/v1/quality");
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200);
    body = ParseJson(response->body);
    const std::string* id = response->FindHeader("X-Request-Id");
    ASSERT_NE(id, nullptr);
    scrape_request_id = *id;
  }
  const obs::json::Value* alpha = FindAlpha(body);
  ASSERT_NE(alpha, nullptr);
  EXPECT_GT(alpha->Find("drift")->number_value, 0.15);
  EXPECT_TRUE(alpha->Find("breached")->bool_value);
  EXPECT_TRUE(alpha->Find("warn")->bool_value);
  EXPECT_GE(alpha->Find("breach_streak")->number_value, 3.0);

  std::lock_guard<std::mutex> lock(log_mutex);
  bool found = false;
  for (const std::string& record : warn_records) {
    if (record.find("quality drift") == std::string::npos) continue;
    found = true;
    EXPECT_NE(record.find("alpha"), std::string::npos) << record;
    // Logged inside the scraping request's scope: the record carries
    // that request's trace id.
    EXPECT_NE(record.find(scrape_request_id), std::string::npos) << record;
  }
  EXPECT_TRUE(found) << "no quality-drift WARN was logged";
}
#endif  // P3GM_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace serve
}  // namespace p3gm
