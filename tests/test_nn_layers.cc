#include <cmath>
#include <functional>

#include "gtest/gtest.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace p3gm {
namespace nn {
namespace {

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c, util::Rng* rng,
                            double scale = 1.0) {
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Normal(0.0, scale);
  }
  return m;
}

// Scalar objective L = sum(weights ⊙ layer(x)); returns its value.
double Objective(Layer* layer, const linalg::Matrix& x,
                 const linalg::Matrix& weights) {
  const linalg::Matrix y = layer->Forward(x, /*train=*/true);
  double total = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    total += y.data()[i] * weights.data()[i];
  }
  return total;
}

// Checks the input gradient of `layer` against central finite differences.
void CheckInputGradient(Layer* layer, linalg::Matrix x,
                        std::size_t out_cols, util::Rng* rng,
                        double tol = 1e-6) {
  const linalg::Matrix w = RandomMatrix(x.rows(), out_cols, rng);
  Objective(layer, x, w);
  const linalg::Matrix grad_in = layer->Backward(w, /*accumulate=*/true);

  const double h = 1e-6;
  for (std::size_t k = 0; k < std::min<std::size_t>(x.size(), 30); ++k) {
    linalg::Matrix xp = x, xm = x;
    xp.data()[k] += h;
    xm.data()[k] -= h;
    const double num =
        (Objective(layer, xp, w) - Objective(layer, xm, w)) / (2 * h);
    EXPECT_NEAR(grad_in.data()[k], num, tol * std::max(1.0, std::fabs(num)))
        << "input coordinate " << k;
  }
}

// Checks the parameter gradients of `layer` against finite differences.
void CheckParamGradients(Layer* layer, const linalg::Matrix& x,
                         std::size_t out_cols, util::Rng* rng,
                         double tol = 1e-6) {
  const linalg::Matrix w = RandomMatrix(x.rows(), out_cols, rng);
  for (Parameter* p : layer->Parameters()) p->ZeroGrad();
  Objective(layer, x, w);
  layer->Backward(w, /*accumulate=*/true);

  const double h = 1e-6;
  for (Parameter* p : layer->Parameters()) {
    for (std::size_t k = 0; k < std::min<std::size_t>(p->size(), 20); ++k) {
      const double saved = p->value.data()[k];
      p->value.data()[k] = saved + h;
      const double lp = Objective(layer, x, w);
      p->value.data()[k] = saved - h;
      const double lm = Objective(layer, x, w);
      p->value.data()[k] = saved;
      const double num = (lp - lm) / (2 * h);
      EXPECT_NEAR(p->grad.data()[k], num, tol * std::max(1.0, std::fabs(num)))
          << p->name << " coordinate " << k;
    }
  }
}

// ---------------------------------------------------------------- Linear

TEST(LinearTest, ForwardMatchesManualAffine) {
  util::Rng rng(3);
  Linear lin("l", 2, 3, &rng);
  lin.weight().value = linalg::Matrix{{1, 2, 3}, {4, 5, 6}};
  lin.bias().value = linalg::Matrix{{0.5, -0.5, 0.0}};
  linalg::Matrix x = {{1, 1}};
  linalg::Matrix y = lin.Forward(x, true);
  EXPECT_DOUBLE_EQ(y(0, 0), 5.5);
  EXPECT_DOUBLE_EQ(y(0, 1), 6.5);
  EXPECT_DOUBLE_EQ(y(0, 2), 9.0);
}

TEST(LinearTest, GradientCheck) {
  util::Rng rng(5);
  Linear lin("l", 4, 3, &rng);
  linalg::Matrix x = RandomMatrix(5, 4, &rng);
  CheckInputGradient(&lin, x, 3, &rng);
  CheckParamGradients(&lin, x, 3, &rng);
}

TEST(LinearTest, PerExampleNormsMatchExplicitPerExampleBackward) {
  util::Rng rng(7);
  Linear lin("l", 3, 2, &rng);
  linalg::Matrix x = RandomMatrix(4, 3, &rng);
  linalg::Matrix dy = RandomMatrix(4, 2, &rng);
  lin.Forward(x, true);
  lin.Backward(dy, /*accumulate=*/false);
  std::vector<double> sq(4, 0.0);
  lin.AddPerExampleSquaredGradNorms(&sq);

  // Explicit: run each example alone and measure its gradient norm.
  for (std::size_t i = 0; i < 4; ++i) {
    Linear single("s", 3, 2, &rng);
    single.weight().value = lin.weight().value;
    single.bias().value = lin.bias().value;
    single.Forward(x.SelectRows({i}), true);
    single.Backward(dy.SelectRows({i}), /*accumulate=*/true);
    const double expected = single.weight().grad.FrobeniusNorm() *
                                single.weight().grad.FrobeniusNorm() +
                            single.bias().grad.FrobeniusNorm() *
                                single.bias().grad.FrobeniusNorm();
    EXPECT_NEAR(sq[i], expected, 1e-9);
  }
}

TEST(LinearTest, ClippedAccumulationMatchesScaledSum) {
  util::Rng rng(9);
  Linear lin("l", 3, 2, &rng);
  linalg::Matrix x = RandomMatrix(4, 3, &rng);
  linalg::Matrix dy = RandomMatrix(4, 2, &rng);
  lin.Forward(x, true);
  lin.Backward(dy, false);
  const std::vector<double> scale = {0.5, 1.0, 0.0, 2.0};
  lin.weight().ZeroGrad();
  lin.bias().ZeroGrad();
  lin.AccumulateClippedGrads(scale);

  // Reference: sum of scale_i * x_i dy_i^T.
  linalg::Matrix expected(3, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t a = 0; a < 3; ++a) {
      for (std::size_t b = 0; b < 2; ++b) {
        expected(a, b) += scale[i] * x(i, a) * dy(i, b);
      }
    }
  }
  EXPECT_LT(linalg::MaxAbsDiff(lin.weight().grad, expected), 1e-12);
  for (std::size_t b = 0; b < 2; ++b) {
    double eb = 0.0;
    for (std::size_t i = 0; i < 4; ++i) eb += scale[i] * dy(i, b);
    EXPECT_NEAR(lin.bias().grad(0, b), eb, 1e-12);
  }
}

// ----------------------------------------------------------- Activations

TEST(ActivationTest, ReluForward) {
  Relu relu;
  linalg::Matrix y = relu.Forward({{-1.0, 2.0}}, true);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 2.0);
}

TEST(ActivationTest, SigmoidBounds) {
  Sigmoid sig;
  linalg::Matrix y = sig.Forward({{-100.0, 0.0, 100.0}}, true);
  EXPECT_NEAR(y(0, 0), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(y(0, 1), 0.5);
  EXPECT_NEAR(y(0, 2), 1.0, 1e-12);
}

TEST(ActivationTest, ScalarHelpersStable) {
  EXPECT_NEAR(SigmoidScalar(-1000.0), 0.0, 1e-12);
  EXPECT_NEAR(SigmoidScalar(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(SoftplusScalar(-1000.0), 0.0, 1e-12);
  EXPECT_NEAR(SoftplusScalar(1000.0), 1000.0, 1e-9);
  EXPECT_NEAR(SoftplusScalar(0.0), std::log(2.0), 1e-12);
}

template <typename L>
class ActivationGradientTest : public ::testing::Test {};

using Activations = ::testing::Types<Relu, Sigmoid, Tanh, Softplus>;
TYPED_TEST_SUITE(ActivationGradientTest, Activations);

TYPED_TEST(ActivationGradientTest, MatchesFiniteDifference) {
  util::Rng rng(11);
  TypeParam layer;
  // Keep inputs away from ReLU's kink for finite differences.
  linalg::Matrix x = RandomMatrix(3, 5, &rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x.data()[i]) < 0.05) x.data()[i] = 0.1;
  }
  CheckInputGradient(&layer, x, 5, &rng, 1e-5);
}

// ----------------------------------------------------------------- Conv

TEST(Conv2dTest, OutputShape) {
  util::Rng rng(13);
  Conv2d conv("c", 1, 6, 6, 4, 3, /*padding=*/1, &rng);
  EXPECT_EQ(conv.out_height(), 6u);
  EXPECT_EQ(conv.out_width(), 6u);
  linalg::Matrix x = RandomMatrix(2, 36, &rng);
  linalg::Matrix y = conv.Forward(x, true);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 4u * 36u);
}

TEST(Conv2dTest, IdentityKernelCopiesInput) {
  util::Rng rng(17);
  Conv2d conv("c", 1, 4, 4, 1, 3, 1, &rng);
  // Kernel = delta at center, zero bias.
  conv.Parameters()[0]->value.Fill(0.0);
  conv.Parameters()[0]->value(4, 0) = 1.0;  // Center of 3x3.
  conv.Parameters()[1]->value.Fill(0.0);
  linalg::Matrix x = RandomMatrix(1, 16, &rng);
  linalg::Matrix y = conv.Forward(x, true);
  EXPECT_LT(linalg::MaxAbsDiff(y, x), 1e-12);
}

TEST(Conv2dTest, GradientCheck) {
  util::Rng rng(19);
  Conv2d conv("c", 2, 5, 5, 3, 3, 1, &rng);
  linalg::Matrix x = RandomMatrix(2, 2 * 25, &rng);
  CheckInputGradient(&conv, x, 3 * 25, &rng, 1e-5);
  CheckParamGradients(&conv, x, 3 * 25, &rng, 1e-5);
}

TEST(MaxPoolTest, ForwardPicksMaxima) {
  MaxPool2d pool(1, 4, 4);
  linalg::Matrix x(1, 16);
  for (std::size_t i = 0; i < 16; ++i) x.data()[i] = static_cast<double>(i);
  linalg::Matrix y = pool.Forward(x, true);
  EXPECT_EQ(y.cols(), 4u);
  EXPECT_DOUBLE_EQ(y(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 13.0);
  EXPECT_DOUBLE_EQ(y(0, 3), 15.0);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(1, 2, 2);
  linalg::Matrix x = {{1.0, 4.0, 2.0, 3.0}};
  pool.Forward(x, true);
  linalg::Matrix g = pool.Backward({{10.0}}, true);
  EXPECT_DOUBLE_EQ(g(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(g(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(g(0, 3), 0.0);
}

// --------------------------------------------------------------- Dropout

TEST(DropoutTest, EvalModeIsIdentity) {
  Dropout drop(0.5, 7);
  linalg::Matrix x = {{1.0, 2.0, 3.0}};
  EXPECT_EQ(drop.Forward(x, /*train=*/false), x);
}

TEST(DropoutTest, TrainModePreservesExpectation) {
  util::Rng rng(23);
  Dropout drop(0.3, 29);
  linalg::Matrix x(200, 50, 1.0);
  linalg::Matrix y = drop.Forward(x, true);
  double mean = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) mean += y.data()[i];
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 1.0, 0.03);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout drop(0.5, 31);
  linalg::Matrix x(1, 100, 1.0);
  linalg::Matrix y = drop.Forward(x, true);
  linalg::Matrix g = drop.Backward(linalg::Matrix(1, 100, 1.0), true);
  EXPECT_EQ(y, g);  // Identical mask and scaling.
}

// ------------------------------------------------------------ Sequential

TEST(SequentialTest, ComposesLayers) {
  util::Rng rng(37);
  Sequential seq("mlp");
  seq.Emplace<Linear>("l1", 4, 8, &rng);
  seq.Emplace<Relu>();
  seq.Emplace<Linear>("l2", 8, 2, &rng);
  EXPECT_EQ(seq.Parameters().size(), 4u);
  EXPECT_EQ(seq.NumParameters(), 4u * 8 + 8 + 8 * 2 + 2);
  linalg::Matrix x = RandomMatrix(3, 4, &rng);
  EXPECT_EQ(seq.Forward(x, true).cols(), 2u);
}

TEST(SequentialTest, GradientCheckThroughStack) {
  util::Rng rng(41);
  Sequential seq("mlp");
  seq.Emplace<Linear>("l1", 3, 6, &rng);
  seq.Emplace<Tanh>();
  seq.Emplace<Linear>("l2", 6, 2, &rng);
  linalg::Matrix x = RandomMatrix(4, 3, &rng);
  CheckInputGradient(&seq, x, 2, &rng, 1e-5);
  CheckParamGradients(&seq, x, 2, &rng, 1e-5);
}

TEST(SequentialTest, ZeroGradClearsAll) {
  util::Rng rng(43);
  Sequential seq;
  seq.Emplace<Linear>("l", 2, 2, &rng);
  linalg::Matrix x = RandomMatrix(2, 2, &rng);
  seq.Forward(x, true);
  seq.Backward(RandomMatrix(2, 2, &rng), true);
  seq.ZeroGrad();
  for (Parameter* p : seq.Parameters()) {
    EXPECT_DOUBLE_EQ(p->grad.MaxAbs(), 0.0);
  }
}

TEST(SequentialTest, PerExampleSupportReflectsMembers) {
  util::Rng rng(47);
  Sequential mlp;
  mlp.Emplace<Linear>("l", 2, 2, &rng);
  EXPECT_TRUE(mlp.SupportsPerExampleGrads());
  Sequential cnn;
  cnn.Emplace<Conv2d>("c", 1, 4, 4, 1, 3, 1, &rng);
  EXPECT_FALSE(cnn.SupportsPerExampleGrads());
}

}  // namespace
}  // namespace nn
}  // namespace p3gm
