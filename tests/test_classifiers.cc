#include <cmath>

#include "gtest/gtest.h"
#include "data/images.h"
#include "eval/adaboost.h"
#include "eval/boosting.h"
#include "eval/cnn_classifier.h"
#include "eval/logistic_regression.h"
#include "eval/metrics.h"
#include "eval/regression_tree.h"
#include "util/rng.h"

namespace p3gm {
namespace eval {
namespace {

// Linearly separable 2-D problem with margin.
void LinearProblem(std::size_t n, linalg::Matrix* x,
                   std::vector<std::size_t>* y, util::Rng* rng) {
  *x = linalg::Matrix(n, 2);
  y->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*x)(i, 0) = rng->Uniform();
    (*x)(i, 1) = rng->Uniform();
    (*y)[i] = ((*x)(i, 0) + (*x)(i, 1) > 1.0) ? 1 : 0;
  }
}

// XOR-style problem no linear model can solve.
void XorProblem(std::size_t n, linalg::Matrix* x,
                std::vector<std::size_t>* y, util::Rng* rng) {
  *x = linalg::Matrix(n, 2);
  y->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*x)(i, 0) = rng->Uniform();
    (*x)(i, 1) = rng->Uniform();
    (*y)[i] = (((*x)(i, 0) > 0.5) != ((*x)(i, 1) > 0.5)) ? 1 : 0;
  }
}

// -------------------------------------------------- Logistic regression

TEST(LogisticRegressionTest, ValidatesInput) {
  LogisticRegression lr;
  EXPECT_FALSE(lr.Fit(linalg::Matrix(), {}).ok());
  EXPECT_FALSE(lr.Fit(linalg::Matrix(2, 2), {0}).ok());
}

TEST(LogisticRegressionTest, SolvesLinearProblem) {
  util::Rng rng(3);
  linalg::Matrix x;
  std::vector<std::size_t> y;
  LinearProblem(500, &x, &y, &rng);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  EXPECT_GT(Accuracy(lr.Predict(x), y), 0.95);
  EXPECT_GT(*Auroc(lr.PredictProba(x), y), 0.98);
}

TEST(LogisticRegressionTest, CannotSolveXor) {
  util::Rng rng(5);
  linalg::Matrix x;
  std::vector<std::size_t> y;
  XorProblem(600, &x, &y, &rng);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  EXPECT_LT(*Auroc(lr.PredictProba(x), y), 0.65);
}

TEST(LogisticRegressionTest, ProbabilitiesInUnitInterval) {
  util::Rng rng(7);
  linalg::Matrix x;
  std::vector<std::size_t> y;
  LinearProblem(100, &x, &y, &rng);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  for (double p : lr.PredictProba(x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// ------------------------------------------------------ Regression tree

TEST(RegressionTreeTest, ValidatesInput) {
  RegressionTree tree;
  util::Rng rng(9);
  EXPECT_FALSE(tree.Fit(linalg::Matrix(), {}, {}, {}, &rng).ok());
  EXPECT_FALSE(
      tree.Fit(linalg::Matrix(2, 1), {1.0}, {1.0, 1.0}, {}, &rng).ok());
}

TEST(RegressionTreeTest, SingleSplitRecoversStepFunction) {
  util::Rng rng(11);
  linalg::Matrix x(100, 1);
  std::vector<double> grad(100), hess(100, 1.0);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i) / 100.0;
    // Newton leaf fits -G/H: target +1 right of 0.5, -1 left.
    grad[i] = (x(i, 0) > 0.5) ? -1.0 : 1.0;
  }
  TreeOptions opt;
  opt.max_depth = 1;
  opt.min_samples_leaf = 1;
  opt.min_samples_split = 2;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, opt, &rng).ok());
  EXPECT_EQ(tree.depth(), 1u);
  double left[1] = {0.2}, right[1] = {0.8};
  EXPECT_NEAR(tree.PredictRow(left), -1.0, 1e-9);
  EXPECT_NEAR(tree.PredictRow(right), 1.0, 1e-9);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  util::Rng rng(13);
  linalg::Matrix x(200, 2);
  std::vector<double> grad(200), hess(200, 1.0);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    grad[i] = rng.Normal();
  }
  TreeOptions opt;
  opt.max_depth = 2;
  opt.min_samples_leaf = 1;
  opt.min_samples_split = 2;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, opt, &rng).ok());
  EXPECT_LE(tree.depth(), 2u);
}

TEST(RegressionTreeTest, MinLeafEnforced) {
  util::Rng rng(17);
  linalg::Matrix x(40, 1);
  std::vector<double> grad(40), hess(40, 1.0);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = static_cast<double>(i);
    grad[i] = (i < 3) ? 10.0 : -1.0;  // Tempting tiny split.
  }
  TreeOptions opt;
  opt.max_depth = 4;
  opt.min_samples_leaf = 10;
  opt.min_samples_split = 20;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, opt, &rng).ok());
  // A split at index 3 is forbidden; the earliest allowed cut leaves 10.
  double probe[1] = {1.0};
  (void)tree.PredictRow(probe);  // Must not crash; structure valid.
  EXPECT_GE(tree.num_nodes(), 1u);
}

TEST(RegressionTreeTest, LambdaShrinksLeaves) {
  util::Rng rng(19);
  linalg::Matrix x(50, 1);
  std::vector<double> grad(50, -2.0), hess(50, 1.0);
  for (std::size_t i = 0; i < 50; ++i) x(i, 0) = rng.Uniform();
  TreeOptions plain, reg;
  plain.max_depth = 0;  // Leaf only.
  reg.max_depth = 0;
  reg.lambda = 50.0;
  RegressionTree t1, t2;
  ASSERT_TRUE(t1.Fit(x, grad, hess, plain, &rng).ok());
  ASSERT_TRUE(t2.Fit(x, grad, hess, reg, &rng).ok());
  double probe[1] = {0.5};
  EXPECT_NEAR(t1.PredictRow(probe), 2.0, 1e-9);           // -G/H = 100/50.
  EXPECT_NEAR(t2.PredictRow(probe), 100.0 / 100.0, 1e-9);  // -G/(H+50).
}

// --------------------------------------------------------------- AdaBoost

TEST(AdaBoostTest, SolvesLinearProblem) {
  util::Rng rng(23);
  linalg::Matrix x;
  std::vector<std::size_t> y;
  LinearProblem(400, &x, &y, &rng);
  AdaBoost ada;
  ASSERT_TRUE(ada.Fit(x, y).ok());
  EXPECT_GT(*Auroc(ada.PredictProba(x), y), 0.95);
}

TEST(AdaBoostTest, ImprovesOverChanceOnXor) {
  // Axis-aligned stumps are individually near-useless on XOR; boosting
  // them recovers a clearly-better-than-chance (though not perfect)
  // decision function.
  util::Rng rng(29);
  linalg::Matrix x;
  std::vector<std::size_t> y;
  XorProblem(600, &x, &y, &rng);
  AdaBoost::Options opt;
  opt.num_stumps = 100;
  AdaBoost ada(opt);
  ASSERT_TRUE(ada.Fit(x, y).ok());
  EXPECT_GT(*Auroc(ada.PredictProba(x), y), 0.65);
}

TEST(AdaBoostTest, SingleStumpOnSeparableData) {
  linalg::Matrix x = {{0.1}, {0.2}, {0.8}, {0.9}};
  std::vector<std::size_t> y = {0, 0, 1, 1};
  AdaBoost::Options opt;
  opt.num_stumps = 5;
  AdaBoost ada(opt);
  ASSERT_TRUE(ada.Fit(x, y).ok());
  EXPECT_LE(ada.num_stumps(), 5u);
  EXPECT_EQ(ada.Predict(x), y);
}

// --------------------------------------------------------------- Boosting

TEST(BoostingTest, GbmSolvesXor) {
  util::Rng rng(31);
  linalg::Matrix x;
  std::vector<std::size_t> y;
  XorProblem(800, &x, &y, &rng);
  GradientBoostedTrees::Options opt;
  opt.num_rounds = 40;
  opt.tree.max_depth = 3;
  opt.tree.min_samples_leaf = 5;
  opt.tree.min_samples_split = 10;
  GradientBoostedTrees gbm(opt);
  ASSERT_TRUE(gbm.Fit(x, y).ok());
  EXPECT_GT(*Auroc(gbm.PredictProba(x), y), 0.95);
}

TEST(BoostingTest, XgboostPresetSolvesXor) {
  util::Rng rng(37);
  linalg::Matrix x;
  std::vector<std::size_t> y;
  XorProblem(800, &x, &y, &rng);
  auto xgb = MakeXgboostClassifier();
  ASSERT_TRUE(xgb->Fit(x, y).ok());
  EXPECT_GT(*Auroc(xgb->PredictProba(x), y), 0.95);
  EXPECT_EQ(xgb->name(), "XGBoost");
}

TEST(BoostingTest, BaseScoreMatchesClassBalance) {
  // Trees can't split constant features; prediction falls back to the
  // base rate.
  linalg::Matrix x(100, 1, 0.5);
  std::vector<std::size_t> y(100, 0);
  for (std::size_t i = 0; i < 30; ++i) y[i] = 1;
  GradientBoostedTrees::Options opt;
  opt.num_rounds = 5;
  opt.tree.min_samples_leaf = 5;
  opt.tree.min_samples_split = 10;
  GradientBoostedTrees gbm(opt);
  ASSERT_TRUE(gbm.Fit(x, y).ok());
  const std::vector<double> p = gbm.PredictProba(x);
  EXPECT_NEAR(p[0], 0.3, 0.05);
}

TEST(BoostingTest, PresetNamesAndValidation) {
  auto gbm = MakeGbmClassifier();
  EXPECT_EQ(gbm->name(), "GBM");
  EXPECT_FALSE(gbm->Fit(linalg::Matrix(), {}).ok());
}

// -------------------------------------------------------------------- CNN

TEST(CnnClassifierTest, LearnsImageClasses) {
  // Small but real: 3-class subset of the glyph renderer.
  data::Dataset d = data::MakeMnistLike(360, 41);
  // Keep only classes 0, 1, 7 (visually distinct), remap to 0..2.
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.labels[i] == 0 || d.labels[i] == 1 || d.labels[i] == 7) {
      keep.push_back(i);
    }
  }
  linalg::Matrix x = d.features.SelectRows(keep);
  std::vector<std::size_t> y;
  for (std::size_t i : keep) {
    y.push_back(d.labels[i] == 0 ? 0 : (d.labels[i] == 1 ? 1 : 2));
  }
  CnnClassifier::Options opt;
  opt.num_classes = 3;
  opt.conv_channels = 8;
  opt.hidden = 32;
  opt.epochs = 3;
  opt.batch_size = 16;
  CnnClassifier cnn(opt);
  ASSERT_TRUE(cnn.Fit(x, y).ok());
  EXPECT_GT(Accuracy(cnn.Predict(x), y), 0.8);
}

TEST(CnnClassifierTest, ValidatesInput) {
  CnnClassifier cnn(CnnClassifier::Options{});
  EXPECT_FALSE(cnn.Fit(linalg::Matrix(), {}).ok());
  EXPECT_FALSE(cnn.Fit(linalg::Matrix(4, 10), {0, 1, 2, 3}).ok());
}

TEST(CnnClassifierTest, ProbabilityRowsSumToOne) {
  data::Dataset d = data::MakeMnistLike(40, 43);
  CnnClassifier::Options opt;
  opt.conv_channels = 4;
  opt.hidden = 16;
  opt.epochs = 1;
  opt.batch_size = 8;
  CnnClassifier cnn(opt);
  ASSERT_TRUE(cnn.Fit(d.features, d.labels).ok());
  linalg::Matrix p = cnn.PredictProba(d.features);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) s += p(i, j);
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace eval
}  // namespace p3gm
