// Tests for the sampling CPU profiler and the sampled heap profiler
// (src/obs/profile/). The CPU suite exercises the full signal path —
// real SIGPROF delivery into the lock-free rings — so running it under
// the TSan / ASan+UBSan presets is exactly the signal-handler-safety
// audit the `profile` ctest label exists for (tools/run_audits.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "obs/flight_recorder.h"
#include "obs/observability.h"
#include "obs/perf/alloc.h"
#include "obs/process_stats.h"
#include "obs/profile/heap.h"
#include "obs/profile/profiler.h"
#include "obs/profile/symbolize.h"
#include "obs/prometheus.h"
#include "obs/registry.h"

// Sanitizer runtimes intercept signal delivery (TSan defers async
// signals to safe points) and change stack layout, which skews *where*
// samples land without breaking the machinery. Sample-count and safety
// assertions hold everywhere; only frame-name assertions are relaxed.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define P3GM_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define P3GM_UNDER_SANITIZER 1
#endif
#endif
#ifndef P3GM_UNDER_SANITIZER
#define P3GM_UNDER_SANITIZER 0
#endif

// Like ProfileTestBusyWork below: external linkage + noinline so the
// frame symbolizes by name. Deliberately at global scope — the heap
// profiler strips `obs::profile::` frames as hook-internal, and an
// application allocation site must survive that strip.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
std::size_t ProfileTestHeapWork(std::size_t rounds) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < rounds; ++i) {
    std::vector<double> block(1024);  // 8 KiB per round.
    block[i % block.size()] = static_cast<double>(i);
    total += static_cast<std::size_t>(block[i % block.size()]);
  }
  return total;
}

namespace p3gm {
namespace obs {
namespace profile {

// External linkage + noinline so the frame symbolizes by name via the
// exported dynamic table — the same property the acceptance criterion
// demands of infer::DecoderPlan::Execute in serve profiles.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
std::uint64_t ProfileTestBusyWork(std::uint64_t iterations) {
  // The loop body touches an atomic: under TSan, async signals deliver
  // at instrumentation points, so a pure-register loop could defer
  // SIGPROF indefinitely.
  static std::atomic<std::uint64_t> sink{0};
  std::uint64_t acc = 1469598103934665603ull;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    acc = (acc ^ i) * 1099511628211ull;
    if ((i & 0xffff) == 0) sink.fetch_add(1, std::memory_order_relaxed);
  }
  return acc;
}

namespace {

// Burns CPU until the profiler has captured at least `want` samples (or
// a generous iteration cap is hit — never hang the suite on a loaded
// machine where ITIMER_PROF credits accrue slowly).
std::uint64_t BusyUntilSamples(std::uint64_t want) {
  std::uint64_t acc = 0;
  const CpuProfiler& profiler = CpuProfiler::Global();
  for (int round = 0; round < 4000; ++round) {
    acc ^= ProfileTestBusyWork(200000);
    if (profiler.SamplesCaptured() >= want) break;
  }
  return acc;
}

TEST(CpuProfilerTest, StartStopProducesFoldedSamples) {
  CpuProfileOptions options;
  options.hz = 500;  // High rate keeps the busy window short.
  ASSERT_TRUE(CpuProfiler::Global().Start(options).ok());
  EXPECT_TRUE(CpuProfiler::Global().running());
  const volatile std::uint64_t sink = BusyUntilSamples(10);
  (void)sink;
  auto profile = CpuProfiler::Global().Stop();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_FALSE(CpuProfiler::Global().running());
  EXPECT_GE(profile->samples, 10u);
  EXPECT_EQ(profile->hz, 500);
  EXPECT_GT(profile->duration_seconds, 0.0);
  ASSERT_FALSE(profile->folded.empty());

  // Weights sum to the non-dropped samples and arrive sorted.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < profile->folded.size(); ++i) {
    total += profile->folded[i].weight;
    if (i > 0) {
      EXPECT_LE(profile->folded[i].weight, profile->folded[i - 1].weight);
    }
  }
  EXPECT_LE(total, profile->samples);
  EXPECT_GT(total, 0u);
}

TEST(CpuProfilerTest, FoldedTextIsFlamegraphCompatible) {
  CpuProfileOptions options;
  options.hz = 500;
  ASSERT_TRUE(CpuProfiler::Global().Start(options).ok());
  const volatile std::uint64_t sink = BusyUntilSamples(10);
  (void)sink;
  auto profile = CpuProfiler::Global().Stop();
  ASSERT_TRUE(profile.ok());
  const std::string text = profile->ToFoldedText();
  ASSERT_FALSE(text.empty());

  // Every line must be "frame(;frame)* <weight>": exactly one space,
  // integer weight, non-empty ';'-separated frames — what flamegraph.pl
  // and tools/trace_to_folded emit/consume.
  std::istringstream lines(text);
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    const std::string weight = line.substr(space + 1);
    ASSERT_FALSE(stack.empty()) << line;
    ASSERT_FALSE(weight.empty()) << line;
    for (const char c : weight) ASSERT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_EQ(stack.find(' '), std::string::npos) << line;
    EXPECT_NE(stack[0], ';') << line;
    EXPECT_NE(stack.back(), ';') << line;
    EXPECT_EQ(stack.find(";;"), std::string::npos) << line;
    ++parsed;
  }
  EXPECT_GT(parsed, 0);
}

TEST(CpuProfilerTest, BusyWorkFrameIsIdentifiable) {
#if P3GM_UNDER_SANITIZER
  GTEST_SKIP() << "frame attribution is skewed under sanitizers";
#else
  CpuProfileOptions options;
  options.hz = 500;
  ASSERT_TRUE(CpuProfiler::Global().Start(options).ok());
  const volatile std::uint64_t sink = BusyUntilSamples(30);
  (void)sink;
  auto profile = CpuProfiler::Global().Stop();
  ASSERT_TRUE(profile.ok());
  const std::string text = profile->ToFoldedText();
  // The busy loop dominates the window, and its frame has external
  // linkage, so dladdr must resolve it by name.
  EXPECT_NE(text.find("ProfileTestBusyWork"), std::string::npos) << text;
  // The handler's own machinery must have been stripped off every leaf.
  EXPECT_EQ(text.find("ProfilerHandleSample"), std::string::npos);
  EXPECT_EQ(text.find("ProfilerSignalHandler"), std::string::npos);
  EXPECT_EQ(text.find("ProfilerCaptureStack"), std::string::npos);
#endif
}

TEST(CpuProfilerTest, SecondStartFailsWithFailedPrecondition) {
  ASSERT_TRUE(CpuProfiler::Global().Start(CpuProfileOptions()).ok());
  const util::Status again =
      CpuProfiler::Global().Start(CpuProfileOptions());
  EXPECT_EQ(again.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(CpuProfiler::Global().Stop().ok());
  // Stop without a running profile also reports FailedPrecondition.
  EXPECT_EQ(CpuProfiler::Global().Stop().status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(CpuProfilerTest, RejectsOutOfRangeOptions) {
  CpuProfileOptions options;
  options.hz = 0;
  EXPECT_EQ(CpuProfiler::Global().Start(options).code(),
            util::StatusCode::kInvalidArgument);
  options.hz = 1001;
  EXPECT_EQ(CpuProfiler::Global().Start(options).code(),
            util::StatusCode::kInvalidArgument);
  options.hz = 99;
  options.ring_capacity = 1;
  EXPECT_EQ(CpuProfiler::Global().Start(options).code(),
            util::StatusCode::kInvalidArgument);
}

// The satellite-task safety assertion: the sampling path performs no
// heap allocation. With -DP3GM_ALLOC_TRACKING=ON the operator-new hooks
// count every allocation process-wide, so a zero delta across a busy
// sampled window (where the only running code is an allocation-free
// loop plus the SIGPROF handler) proves the handler allocates nothing.
// Compiled out, the delta is trivially zero and the test still passes —
// the real bite comes from the alloc-tracking CI leg.
TEST(CpuProfilerTest, HandlerPathDoesNotAllocate) {
  CpuProfileOptions options;
  options.hz = 997;  // As hot as the sampler goes.
  ASSERT_TRUE(CpuProfiler::Global().Start(options).ok());
  // One warm-up burst first: ring claim and libgcc state settle, and
  // the current thread's heap-sampling countdown is past its first
  // stride.
  const volatile std::uint64_t warm = BusyUntilSamples(5);
  (void)warm;
  perf::AllocScope scope;
  const volatile std::uint64_t sink = BusyUntilSamples(
      CpuProfiler::Global().SamplesCaptured() + 50);
  (void)sink;
  const perf::AllocStats delta = scope.Delta();
  EXPECT_EQ(delta.alloc_count, 0u);
  EXPECT_EQ(delta.bytes_allocated, 0u);
  auto profile = CpuProfiler::Global().Stop();
  ASSERT_TRUE(profile.ok());
  EXPECT_GE(profile->samples, 50u);
}

TEST(CpuProfilerTest, SamplesAcrossThreads) {
  CpuProfileOptions options;
  options.hz = 500;
  ASSERT_TRUE(CpuProfiler::Global().Start(options).ok());
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> acc{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&acc] {
      acc.fetch_add(BusyUntilSamples(40), std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  auto profile = CpuProfiler::Global().Stop();
  ASSERT_TRUE(profile.ok());
  EXPECT_GE(profile->samples, 10u);
  // Loss accounting is exact: folded weights + dropped == every tick
  // that fired.
  std::uint64_t total = 0;
  for (const FoldedStack& fs : profile->folded) total += fs.weight;
  EXPECT_LE(total, profile->samples);
}

TEST(CpuProfilerTest, PublishesRegistryGaugesOnStop) {
  SetEnabled(true);
  ASSERT_TRUE(CpuProfiler::Global().Start(CpuProfileOptions()).ok());
  const volatile std::uint64_t sink = BusyUntilSamples(5);
  (void)sink;
  auto profile = CpuProfiler::Global().Stop();
  ASSERT_TRUE(profile.ok());
#if P3GM_OBSERVABILITY_ENABLED
  EXPECT_EQ(Registry::Global().gauge("obs.profile.samples")->value(),
            static_cast<double>(profile->samples));
  EXPECT_EQ(Registry::Global().gauge("obs.profile.dropped")->value(),
            static_cast<double>(profile->dropped));
#else
  // Compiled out, the registry stays inert — but the profiler itself
  // (not gated on obs::Enabled) must still have worked above.
  EXPECT_EQ(Registry::Global().gauge("obs.profile.samples")->value(), 0.0);
#endif
}

// SIGQUIT flight-recorder dump and SIGPROF sampling share the signal
// machinery (and the pre-warmed backtrace path); both must keep working
// when interleaved.
TEST(CpuProfilerTest, CoexistsWithFlightRecorderDump) {
  const std::string dump_path =
      "/tmp/p3gm_profile_flight_" + std::to_string(::getpid()) + ".dump";
  InstallFlightDumpHandlers(dump_path);
  FlightRecorder::Global().Record(FlightRecorder::EventKind::kRequest,
                                  "profile.test", 1, 2);
  ASSERT_TRUE(CpuProfiler::Global().Start(CpuProfileOptions()).ok());
  const volatile std::uint64_t sink1 = BusyUntilSamples(3);
  (void)sink1;
  ASSERT_EQ(::raise(SIGQUIT), 0);  // Dumps and returns.
  const std::uint64_t before = CpuProfiler::Global().SamplesCaptured();
  const volatile std::uint64_t sink2 = BusyUntilSamples(before + 3);
  (void)sink2;
  auto profile = CpuProfiler::Global().Stop();
  ASSERT_TRUE(profile.ok());
  EXPECT_GT(profile->samples, before);
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good());
  std::stringstream contents;
  contents << dump.rdbuf();
  EXPECT_NE(contents.str().find("=== p3gm flight recorder ==="),
            std::string::npos);
  ::unlink(dump_path.c_str());
}

// ------------------------------------------------------- symbolization

TEST(SymbolizeTest, DemanglesItaniumNames) {
  EXPECT_EQ(Demangle("_Z3foov"), "foo()");
  EXPECT_EQ(Demangle("not_mangled"), "not_mangled");
  EXPECT_EQ(Demangle(nullptr), "");
}

TEST(SymbolizeTest, ResolvesExportedFunctionByName) {
  const std::uintptr_t pc =
      reinterpret_cast<std::uintptr_t>(&ProfileTestBusyWork);
  const std::string name = SymbolizePc(pc);
  EXPECT_NE(name.find("ProfileTestBusyWork"), std::string::npos) << name;
  // Sanitization: no folded-format separators survive in a frame name.
  EXPECT_EQ(name.find(' '), std::string::npos);
  EXPECT_EQ(name.find(';'), std::string::npos);
}

TEST(SymbolizeTest, UnresolvablePcRendersAsHex) {
  // Page 0x1000 is never mapped for code in this process.
  const std::string name = SymbolizePc(0x1234);
  EXPECT_EQ(name, "0x1234");
}

TEST(SymbolizeTest, FoldStackReversesToRootFirst) {
  const std::uintptr_t leaf =
      reinterpret_cast<std::uintptr_t>(&ProfileTestBusyWork);
  // Leaf-first input: [leaf, root]. AdjustReturnAddress applies to the
  // outer frame only, so pass entry+1 to stay inside the function.
  const std::uintptr_t pcs[2] = {leaf, leaf + 1};
  const std::string folded = FoldStack(pcs, 2);
  const std::size_t sep = folded.find(';');
  ASSERT_NE(sep, std::string::npos);
  EXPECT_NE(folded.substr(0, sep).find("ProfileTestBusyWork"),
            std::string::npos);
  EXPECT_NE(folded.substr(sep + 1).find("ProfileTestBusyWork"),
            std::string::npos);
}

// ------------------------------------------------------ heap profiler

TEST(HeapProfilerTest, RequiresAllocTracking) {
  if (perf::AllocTrackingCompiledIn()) {
    GTEST_SKIP() << "alloc tracking is compiled in";
  }
  EXPECT_EQ(HeapProfiler::Global().Start(HeapProfileOptions()).code(),
            util::StatusCode::kUnimplemented);
  EXPECT_FALSE(HeapProfiler::Global().running());
}

TEST(HeapProfilerTest, RejectsZeroStride) {
  if (!perf::AllocTrackingCompiledIn()) {
    GTEST_SKIP() << "needs -DP3GM_ALLOC_TRACKING=ON";
  }
  HeapProfileOptions options;
  options.stride_bytes = 0;
  EXPECT_EQ(HeapProfiler::Global().Start(options).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(HeapProfilerTest, AttributesSampledAllocations) {
  if (!perf::AllocTrackingCompiledIn()) {
    GTEST_SKIP() << "needs -DP3GM_ALLOC_TRACKING=ON";
  }
  HeapProfileOptions options;
  options.stride_bytes = 4096;  // Every ~half round samples.
  ASSERT_TRUE(HeapProfiler::Global().Start(options).ok());
  EXPECT_TRUE(HeapProfiler::Global().running());
  const volatile std::size_t sink = ProfileTestHeapWork(512);
  (void)sink;
  auto snapshot = HeapProfiler::Global().Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_GT(snapshot->samples, 0u);
  EXPECT_GT(snapshot->sampled_bytes, 0u);
  EXPECT_EQ(snapshot->stride_bytes, 4096u);
  ASSERT_FALSE(snapshot->folded.empty());
#if !P3GM_UNDER_SANITIZER
  EXPECT_NE(snapshot->ToFoldedText().find("ProfileTestHeapWork"),
            std::string::npos)
      << snapshot->ToFoldedText();
#endif
  HeapProfiler::Global().Stop();
  EXPECT_FALSE(HeapProfiler::Global().running());
  // Snapshot after Stop reports FailedPrecondition (sampling is off).
  EXPECT_EQ(HeapProfiler::Global().Snapshot().status().code(),
            util::StatusCode::kFailedPrecondition);
  // A fresh Start resets the table.
  ASSERT_TRUE(HeapProfiler::Global().Start(options).ok());
  auto fresh = HeapProfiler::Global().Snapshot();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->sampled_bytes, 0u);
  HeapProfiler::Global().Stop();
}

TEST(HeapProfilerTest, DeterministicAcrossRuns) {
  if (!perf::AllocTrackingCompiledIn()) {
    GTEST_SKIP() << "needs -DP3GM_ALLOC_TRACKING=ON";
  }
  // Same single-threaded workload, same stride -> identical sample
  // counts (the deterministic-stride guarantee; a Poisson sampler would
  // differ run to run).
  HeapProfileOptions options;
  options.stride_bytes = 8192;
  std::uint64_t counts[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    ASSERT_TRUE(HeapProfiler::Global().Start(options).ok());
    const volatile std::size_t sink = ProfileTestHeapWork(256);
    (void)sink;
    auto snapshot = HeapProfiler::Global().Snapshot();
    ASSERT_TRUE(snapshot.ok());
    counts[run] = snapshot->samples;
    HeapProfiler::Global().Stop();
  }
  EXPECT_GT(counts[0], 0u);
  EXPECT_EQ(counts[0], counts[1]);
}

// ------------------------------------------------------ process stats

TEST(ProcessStatsTest, ReadsPlausibleValuesFromProcfs) {
  // A freshly forked test process can still be at 0 CPU ticks
  // (clock-tick granularity is 10ms); burn until the first tick lands
  // so cpu_seconds_total is measurably positive.
  for (int round = 0; round < 1000; ++round) {
    const volatile std::uint64_t burn = ProfileTestBusyWork(2000000);
    (void)burn;
    if (ReadProcessStats().cpu_seconds_total > 0.0) break;
  }
  const ProcessStats stats = ReadProcessStats();
  ASSERT_TRUE(stats.valid);
  EXPECT_GT(stats.resident_memory_bytes, 0.0);
  EXPECT_GT(stats.virtual_memory_bytes, stats.resident_memory_bytes);
  EXPECT_GE(stats.open_fds, 3.0);  // stdin/stdout/stderr at minimum.
  EXPECT_GT(stats.cpu_seconds_total, 0.0);
  EXPECT_GE(stats.threads, 1.0);
  // Started after the epoch, before now (btime + starttime sanity).
  EXPECT_GT(stats.start_time_seconds, 1.0e9);
}

// The exposition shape is pinned against a golden: gauge names and
// TYPE lines are stable, only the values are volatile, so values are
// normalized to <NUM> before comparing.
TEST(ProcessStatsTest, PrometheusExpositionMatchesGolden) {
  SetEnabled(true);
  Registry::Global().Reset();
  PublishProcessGauges();
  const std::string text = ToPrometheusText(Registry::Global().TakeSnapshot());
  std::istringstream lines(text);
  std::string line;
  std::string normalized;
  while (std::getline(lines, line)) {
    if (line.find("p3gm_process_") == std::string::npos) continue;
    if (line.compare(0, 1, "#") != 0) {
      const std::size_t space = line.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      line = line.substr(0, space) + " <NUM>";
    }
    normalized += line;
    normalized += '\n';
  }
  std::ifstream golden(std::string(P3GM_GOLDEN_DIR) +
                       "/prometheus_process.txt");
  ASSERT_TRUE(golden.good());
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(normalized, want.str());
}

TEST(ProcessStatsTest, PublishGaugesRefreshesRegistry) {
  SetEnabled(true);
  if (!Enabled()) {
    GTEST_SKIP() << "registry is inert with the layer compiled out";
  }
  for (int round = 0; round < 1000; ++round) {
    const volatile std::uint64_t burn = ProfileTestBusyWork(2000000);
    (void)burn;
    if (ReadProcessStats().cpu_seconds_total > 0.0) break;
  }
  PublishProcessGauges();
  Registry& registry = Registry::Global();
  EXPECT_GT(
      registry.gauge("p3gm.process.resident_memory_bytes")->value(), 0.0);
  EXPECT_GT(registry.gauge("p3gm.process.cpu_seconds_total")->value(),
            0.0);
  EXPECT_GE(registry.gauge("p3gm.process.open_fds")->value(), 3.0);
  EXPECT_GE(registry.gauge("p3gm.process.threads")->value(), 1.0);
  if (perf::AllocTrackingCompiledIn()) {
    EXPECT_GT(registry.gauge("p3gm.alloc.alloc_count")->value(), 0.0);
    EXPECT_GT(registry.gauge("p3gm.alloc.bytes_allocated")->value(), 0.0);
  }
}

}  // namespace
}  // namespace profile
}  // namespace obs
}  // namespace p3gm
