#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "linalg/cholesky.h"
#include "linalg/covariance.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"
#include "util/rng.h"

namespace p3gm {
namespace linalg {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, util::Rng* rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal();
  return m;
}

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, ConstructAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
}

TEST(MatrixTest, FromFlatValidatesSize) {
  EXPECT_TRUE(Matrix::FromFlat(2, 2, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(Matrix::FromFlat(2, 2, {1, 2, 3}).ok());
}

TEST(MatrixTest, FromRowsRejectsRagged) {
  EXPECT_TRUE(Matrix::FromRows({{1, 2}, {3, 4}}).ok());
  EXPECT_FALSE(Matrix::FromRows({{1, 2}, {3}}).ok());
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  Matrix d = Matrix::Diagonal({2, 3});
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(MatrixTest, RowColSetRow) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1, 3}));
  m.SetRow(0, {9, 8});
  EXPECT_DOUBLE_EQ(m(0, 1), 8);
}

TEST(MatrixTest, SelectRowsPreservesOrderAndDuplicates) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix s = m.SelectRows({2, 0, 2});
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5);
  EXPECT_DOUBLE_EQ(s(1, 0), 1);
  EXPECT_DOUBLE_EQ(s(2, 1), 6);
}

TEST(MatrixTest, ConcatColsAndRows) {
  Matrix a = {{1}, {2}};
  Matrix b = {{3}, {4}};
  Matrix cc = a.ConcatCols(b);
  EXPECT_EQ(cc.cols(), 2u);
  EXPECT_DOUBLE_EQ(cc(1, 1), 4);
  Matrix cr = a.ConcatRows(b);
  EXPECT_EQ(cr.rows(), 4u);
  EXPECT_DOUBLE_EQ(cr(3, 0), 4);
}

TEST(MatrixTest, ConcatRowsWithEmpty) {
  Matrix a;
  Matrix b = {{1, 2}};
  EXPECT_EQ(a.ConcatRows(b).rows(), 1u);
  EXPECT_EQ(b.ConcatRows(a).rows(), 1u);
}

TEST(MatrixTest, TransposedTwiceIsIdentityOp) {
  util::Rng rng(3);
  Matrix m = RandomMatrix(4, 7, &rng);
  EXPECT_EQ(m.Transposed().Transposed(), m);
}

TEST(MatrixTest, Arithmetic) {
  Matrix a = {{1, 2}};
  Matrix b = {{3, 4}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 6);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2);
  EXPECT_DOUBLE_EQ((a * 2.0)(0, 1), 4);
}

TEST(MatrixTest, FrobeniusNormAndMaxAbs) {
  Matrix m = {{3, -4}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

TEST(MatrixTest, FirstCols) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  Matrix f = m.FirstCols(2);
  EXPECT_EQ(f.cols(), 2u);
  EXPECT_DOUBLE_EQ(f(1, 1), 5);
}

TEST(MatrixTest, ToStringRendersShapeAndValues) {
  Matrix m = {{1.5, -2.0}};
  const std::string s = m.ToString(2);
  EXPECT_NE(s.find("1x2"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("-2.00"), std::string::npos);
}

TEST(MatrixTest, ResizeAndFill) {
  Matrix m(2, 2, 1.0);
  m.Resize(3, 1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_DOUBLE_EQ(m(2, 0), 0.0);
  m.Fill(4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
}

// ------------------------------------------------------------------- Ops

TEST(OpsTest, MatmulAgainstHandComputed) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix c = Matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(OpsTest, TransposeVariantsAgreeWithExplicitTranspose) {
  util::Rng rng(5);
  Matrix a = RandomMatrix(4, 3, &rng);
  Matrix b = RandomMatrix(4, 5, &rng);
  EXPECT_LT(MaxAbsDiff(MatmulTransA(a, b), Matmul(a.Transposed(), b)), 1e-12);
  Matrix c = RandomMatrix(5, 3, &rng);
  EXPECT_LT(MaxAbsDiff(MatmulTransB(a, c), Matmul(a, c.Transposed())),
            1e-12);
}

TEST(OpsTest, MatVecMatchesMatmul) {
  util::Rng rng(7);
  Matrix a = RandomMatrix(3, 4, &rng);
  std::vector<double> x = {1, -2, 0.5, 3};
  std::vector<double> y = MatVec(a, x);
  for (std::size_t i = 0; i < 3; ++i) {
    double expect = 0;
    for (std::size_t j = 0; j < 4; ++j) expect += a(i, j) * x[j];
    EXPECT_NEAR(y[i], expect, 1e-12);
  }
}

TEST(OpsTest, MatVecTransA) {
  util::Rng rng(9);
  Matrix a = RandomMatrix(3, 4, &rng);
  std::vector<double> x = {1, 2, -1};
  std::vector<double> y = MatVecTransA(a, x);
  std::vector<double> expect = MatVec(a.Transposed(), x);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(y[j], expect[j], 1e-12);
}

TEST(OpsTest, DotNormAxpyScale) {
  std::vector<double> a = {1, 2, 2};
  std::vector<double> b = {2, 0, 1};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(SquaredNorm2(a), 9.0);
  Axpy(2.0, b, &a);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  Scale(0.5, &a);
  EXPECT_DOUBLE_EQ(a[0], 2.5);
}

TEST(OpsTest, OuterProduct) {
  Matrix o = Outer({1, 2}, {3, 4, 5});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10);
}

TEST(OpsTest, AddRowVectorBroadcasts) {
  Matrix m = {{1, 1}, {2, 2}};
  AddRowVector({10, 20}, &m);
  EXPECT_DOUBLE_EQ(m(0, 1), 21);
  EXPECT_DOUBLE_EQ(m(1, 0), 12);
}

TEST(OpsTest, ColMeans) {
  Matrix m = {{1, 3}, {3, 5}};
  auto mu = ColMeans(m);
  EXPECT_DOUBLE_EQ(mu[0], 2);
  EXPECT_DOUBLE_EQ(mu[1], 4);
}

TEST(OpsTest, RowSquaredNorms) {
  Matrix m = {{3, 4}, {0, 1}};
  auto n = RowSquaredNorms(m);
  EXPECT_DOUBLE_EQ(n[0], 25);
  EXPECT_DOUBLE_EQ(n[1], 1);
}

TEST(OpsTest, ScaleRows) {
  Matrix m = {{1, 2}, {3, 4}};
  ScaleRows({2, 0.5}, &m);
  EXPECT_DOUBLE_EQ(m(0, 1), 4);
  EXPECT_DOUBLE_EQ(m(1, 0), 1.5);
}

TEST(OpsTest, SyrkMatchesExplicit) {
  util::Rng rng(11);
  Matrix a = RandomMatrix(6, 4, &rng);
  EXPECT_LT(MaxAbsDiff(Syrk(a), Matmul(a.Transposed(), a)), 1e-12);
}

// -------------------------------------------------------------- Cholesky

TEST(CholeskyTest, FactorizesSpdMatrix) {
  Matrix a = {{4, 2}, {2, 3}};
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  Matrix reconstructed = MatmulTransB(*l, *l);
  EXPECT_LT(MaxAbsDiff(reconstructed, a), 1e-12);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = {{1, 2}, {2, 1}};  // Eigenvalues 3 and -1.
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(CholeskyTest, JitterRescuesNearSingular) {
  Matrix a = {{1, 1}, {1, 1}};  // Singular.
  EXPECT_FALSE(Cholesky(a).ok());
  EXPECT_TRUE(Cholesky(a, 1e-6).ok());
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  util::Rng rng(13);
  Matrix b = RandomMatrix(5, 5, &rng);
  Matrix a = MatmulTransB(b, b);  // SPD.
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 1.0;
  std::vector<double> x_true = {1, -2, 3, 0.5, -1};
  std::vector<double> rhs = MatVec(a, x_true);
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  std::vector<double> x = CholeskySolve(*l, rhs);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(CholeskyTest, LogDetMatchesIdentityScaling) {
  Matrix a = Matrix::Identity(3);
  a *= 4.0;  // det = 64.
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(CholeskyLogDet(*l), std::log(64.0), 1e-12);
}

// ------------------------------------------------------------ Covariance

TEST(CovarianceTest, MatchesHandComputed) {
  Matrix x = {{1, 0}, {-1, 0}, {0, 2}, {0, -2}};
  Matrix cov = Covariance(x);
  EXPECT_NEAR(cov(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(cov(1, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 0.0, 1e-12);
}

TEST(CovarianceTest, CenterRowsSubtractsMean) {
  Matrix x = {{1, 2}, {3, 4}};
  CenterRows({2, 3}, &x);
  EXPECT_DOUBLE_EQ(x(0, 0), -1);
  EXPECT_DOUBLE_EQ(x(1, 1), 1);
}

// Shape-contract death tests: every kernel must abort (not silently
// misread memory) when handed incompatible dimensions. The pool spawns
// threads, so use the threadsafe death-test style, which re-executes the
// test in a fresh child process.
class OpsShapeDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
  const Matrix a_ = Matrix(3, 4);
  const Matrix b_ = Matrix(5, 6);
};

TEST_F(OpsShapeDeathTest, MatmulInnerDimMismatch) {
  EXPECT_DEATH(Matmul(a_, b_), "P3GM_CHECK failed");
}

TEST_F(OpsShapeDeathTest, MatmulTransARowMismatch) {
  EXPECT_DEATH(MatmulTransA(a_, b_), "P3GM_CHECK failed");
}

TEST_F(OpsShapeDeathTest, MatmulTransBColMismatch) {
  EXPECT_DEATH(MatmulTransB(a_, b_), "P3GM_CHECK failed");
}

TEST_F(OpsShapeDeathTest, MatVecLengthMismatch) {
  EXPECT_DEATH(MatVec(a_, std::vector<double>(3)), "P3GM_CHECK failed");
}

TEST_F(OpsShapeDeathTest, MatVecTransALengthMismatch) {
  EXPECT_DEATH(MatVecTransA(a_, std::vector<double>(4)),
               "P3GM_CHECK failed");
}

TEST_F(OpsShapeDeathTest, DotLengthMismatch) {
  EXPECT_DEATH(Dot(std::vector<double>(3), std::vector<double>(4)),
               "P3GM_CHECK failed");
}

TEST_F(OpsShapeDeathTest, AxpyLengthMismatch) {
  std::vector<double> y(4);
  EXPECT_DEATH(Axpy(2.0, std::vector<double>(3), &y), "P3GM_CHECK failed");
}

TEST_F(OpsShapeDeathTest, AddRowVectorWidthMismatch) {
  Matrix m(3, 4);
  EXPECT_DEATH(AddRowVector(std::vector<double>(5), &m),
               "P3GM_CHECK failed");
}

TEST_F(OpsShapeDeathTest, ScaleRowsHeightMismatch) {
  Matrix m(3, 4);
  EXPECT_DEATH(ScaleRows(std::vector<double>(2), &m), "P3GM_CHECK failed");
}

TEST_F(OpsShapeDeathTest, MaxAbsDiffShapeMismatch) {
  EXPECT_DEATH(MaxAbsDiff(a_, b_), "P3GM_CHECK failed");
}

TEST(CovarianceTest, PsdProperty) {
  util::Rng rng(17);
  Matrix x = RandomMatrix(50, 6, &rng);
  Matrix cov = Covariance(x);
  // All diagonal entries non-negative and matrix symmetric.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GE(cov(i, i), 0.0);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(cov(i, j), cov(j, i), 1e-12);
    }
  }
  // Cholesky with tiny jitter must succeed (PSD).
  EXPECT_TRUE(Cholesky(cov, 1e-9).ok());
}

}  // namespace
}  // namespace linalg
}  // namespace p3gm
