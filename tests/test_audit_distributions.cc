#include <cmath>
#include <cstdlib>

#include "gtest/gtest.h"
#include "audit/distribution_audit.h"
#include "audit/fault_injection.h"

namespace p3gm {
namespace audit {
namespace {

constexpr std::uint64_t kSeed = 0xd15717b071051ULL;
constexpr std::size_t kN = 20000;

// -------------------------------------------------- sampler GoF (positive)

TEST(DistributionAuditTest, UniformSamplerMatchesCdf) {
  const GofResult r = AuditUniform(kSeed, kN);
  EXPECT_TRUE(r.Pass()) << r.Summary();
}

TEST(DistributionAuditTest, NormalSamplerMatchesCdf) {
  const GofResult r = AuditNormal(kSeed + 1, kN);
  EXPECT_TRUE(r.Pass()) << r.Summary();
}

TEST(DistributionAuditTest, LaplaceSamplerMatchesCdf) {
  for (double scale : {0.5, 1.0, 4.0}) {
    const GofResult r = AuditLaplace(scale, kSeed + 2, kN);
    EXPECT_TRUE(r.Pass()) << "scale=" << scale << " " << r.Summary();
  }
}

TEST(DistributionAuditTest, GammaSamplerMatchesCdf) {
  // Covers both Marsaglia-Tsang branches (shape >= 1 and the shape < 1
  // boost) across scales.
  for (double shape : {0.4, 1.0, 2.5, 9.0}) {
    for (double scale : {0.5, 2.0}) {
      const GofResult r = AuditGamma(shape, scale, kSeed + 3, kN);
      EXPECT_TRUE(r.Pass())
          << "shape=" << shape << " scale=" << scale << " " << r.Summary();
    }
  }
}

TEST(DistributionAuditTest, ChiSquaredSamplerMatchesCdf) {
  for (double df : {1.0, 2.0, 5.0, 11.0}) {
    const GofResult r = AuditChiSquared(df, kSeed + 4, kN);
    EXPECT_TRUE(r.Pass()) << "df=" << df << " " << r.Summary();
  }
}

TEST(DistributionAuditTest, WishartMarginalsMatchBartlett) {
  // d=4, df=d+1=5, c as DP-PCA would pick for n=100, eps=0.5.
  const double c = 3.0 / (2.0 * 100.0 * 0.5);
  const WishartAuditResult r = AuditWishart(4, 5.0, c, kSeed + 5, 4000);
  EXPECT_TRUE(r.Pass()) << r.diagonal.Summary() << " z=" << r.offdiag_z;
}

// ------------------------------------------------ calibration (positive)

TEST(CalibrationAuditTest, GaussianMechanismMatchesChargedSigma) {
  const CalibrationAuditResult r =
      AuditGaussianMechanismCalibration(1.0, 2.0, 1e-5, kSeed + 6, kN);
  EXPECT_TRUE(r.Calibrated()) << r.gof.Summary()
                              << " empirical=" << r.empirical_stddev
                              << " charged=" << r.charged_stddev;
  EXPECT_GT(r.claimed_epsilon, 0.0);
}

TEST(CalibrationAuditTest, SensitivityScalesTheNoise) {
  const CalibrationAuditResult r =
      AuditGaussianMechanismCalibration(3.0, 1.5, 1e-5, kSeed + 7, kN);
  EXPECT_DOUBLE_EQ(r.charged_stddev, 4.5);
  EXPECT_TRUE(r.Calibrated()) << r.gof.Summary();
}

// ------------------------------------------- negative controls (faults)

// Negative controls inject faults, so they can only run when the hooks
// are compiled in (-DP3GM_FAULT_INJECTION=ON, the default).
#define P3GM_REQUIRE_FAULT_INJECTION()                           \
  do {                                                           \
    if (!kFaultInjectionCompiled) {                              \
      GTEST_SKIP() << "built with -DP3GM_FAULT_INJECTION=OFF";   \
    }                                                            \
  } while (0)

TEST(CalibrationAuditNegativeTest, HalvedNoiseIsCaught) {
  P3GM_REQUIRE_FAULT_INJECTION();
  FaultConfig fault;
  fault.noise_scale = 0.5;
  FaultInjector::Scope scope(fault);
  const CalibrationAuditResult r =
      AuditGaussianMechanismCalibration(1.0, 2.0, 1e-5, kSeed + 8, kN);
  // The mechanism added N(0,1) noise while the accountant charged for
  // N(0,4): both the GoF test and the moment check must detect it.
  EXPECT_FALSE(r.Calibrated());
  EXPECT_FALSE(r.gof.Pass()) << r.gof.Summary();
  EXPECT_NEAR(r.empirical_stddev, 1.0, 0.05);
}

TEST(CalibrationAuditNegativeTest, InflatedNoiseIsAlsoCaught) {
  P3GM_REQUIRE_FAULT_INJECTION();
  // Over-noising is not a privacy bug but is still a calibration bug
  // (wasted utility); the auditor is two-sided.
  FaultConfig fault;
  fault.noise_scale = 1.5;
  FaultInjector::Scope scope(fault);
  const CalibrationAuditResult r =
      AuditGaussianMechanismCalibration(1.0, 2.0, 1e-5, kSeed + 9, kN);
  EXPECT_FALSE(r.Calibrated());
}

TEST(DistributionAuditNegativeTest, ScaledWishartIsCaught) {
  P3GM_REQUIRE_FAULT_INJECTION();
  FaultConfig fault;
  fault.noise_scale = 0.5;
  FaultInjector::Scope scope(fault);
  const double c = 3.0 / (2.0 * 100.0 * 0.5);
  const WishartAuditResult r = AuditWishart(4, 5.0, c, kSeed + 10, 4000);
  EXPECT_FALSE(r.Pass()) << r.diagonal.Summary();
}

TEST(FaultInjectionTest, ScopeRestoresPreviousConfig) {
  P3GM_REQUIRE_FAULT_INJECTION();
  EXPECT_DOUBLE_EQ(NoiseScale(), 1.0);
  {
    FaultConfig fault;
    fault.noise_scale = 0.25;
    fault.skip_clip = true;
    FaultInjector::Scope scope(fault);
    EXPECT_DOUBLE_EQ(NoiseScale(), 0.25);
    EXPECT_TRUE(SkipClip());
  }
  EXPECT_DOUBLE_EQ(NoiseScale(), 1.0);
  EXPECT_FALSE(SkipClip());
  EXPECT_FALSE(DropAccountantEvents());
}

// ----------------------------------------------------- slow, wider sweep

bool RunSlowAudits() {
  const char* env = std::getenv("P3GM_RUN_SLOW_AUDITS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(SlowDistributionAuditTest, LargeSampleSweep) {
  if (!RunSlowAudits()) {
    GTEST_SKIP() << "set P3GM_RUN_SLOW_AUDITS=1 (tools/run_audits.sh)";
  }
  const std::size_t n = 200000;
  EXPECT_TRUE(AuditUniform(kSeed + 20, n).Pass());
  EXPECT_TRUE(AuditNormal(kSeed + 21, n).Pass());
  for (double scale : {0.1, 1.0, 10.0, 100.0}) {
    EXPECT_TRUE(AuditLaplace(scale, kSeed + 22, n).Pass()) << scale;
  }
  for (double shape : {0.1, 0.7, 1.0, 3.0, 30.0}) {
    EXPECT_TRUE(AuditGamma(shape, 1.0, kSeed + 23, n).Pass()) << shape;
  }
  for (double df : {0.5, 1.0, 3.0, 20.0, 100.0}) {
    EXPECT_TRUE(AuditChiSquared(df, kSeed + 24, n).Pass()) << df;
  }
  const WishartAuditResult w =
      AuditWishart(6, 7.0, 0.01, kSeed + 25, 20000);
  EXPECT_TRUE(w.Pass()) << w.diagonal.Summary() << " z=" << w.offdiag_z;
}

}  // namespace
}  // namespace audit
}  // namespace p3gm
