#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "dp/accountant.h"
#include "dp/rdp.h"
#include "util/rng.h"

namespace p3gm {
namespace dp {
namespace {

// ------------------------------------------------------------- RDP forms

TEST(RdpTest, GaussianLinearInAlpha) {
  EXPECT_DOUBLE_EQ(GaussianRdp(2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(GaussianRdp(4.0, 2.0), 0.5);
}

TEST(RdpTest, SampledGaussianZeroRateIsFree) {
  EXPECT_DOUBLE_EQ(SampledGaussianRdp(8, 0.0, 1.0), 0.0);
}

TEST(RdpTest, SampledGaussianFullRateEqualsGaussian) {
  EXPECT_NEAR(SampledGaussianRdp(8, 1.0, 2.0), GaussianRdp(8.0, 2.0), 1e-12);
}

TEST(RdpTest, SampledGaussianBelowGaussian) {
  // Subsampling amplifies privacy: cost must be below the unsampled one.
  for (std::size_t alpha : {2, 4, 8, 16, 32}) {
    EXPECT_LT(SampledGaussianRdp(alpha, 0.01, 1.0),
              GaussianRdp(static_cast<double>(alpha), 1.0));
  }
}

class SampledGaussianMonotonic
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SampledGaussianMonotonic, IncreasingInAlpha) {
  auto [q, sigma] = GetParam();
  double prev = 0.0;
  for (std::size_t alpha = 2; alpha <= 64; ++alpha) {
    const double eps = SampledGaussianRdp(alpha, q, sigma);
    EXPECT_GE(eps, prev - 1e-12) << "alpha=" << alpha;
    prev = eps;
  }
}

TEST_P(SampledGaussianMonotonic, DecreasingInSigma) {
  auto [q, sigma] = GetParam();
  EXPECT_GE(SampledGaussianRdp(16, q, sigma),
            SampledGaussianRdp(16, q, sigma * 2.0) - 1e-12);
}

TEST_P(SampledGaussianMonotonic, IncreasingInRate) {
  auto [q, sigma] = GetParam();
  if (q <= 0.5) {
    EXPECT_LE(SampledGaussianRdp(16, q, sigma),
              SampledGaussianRdp(16, q * 2.0, sigma) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SampledGaussianMonotonic,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.1),
                       ::testing::Values(0.8, 1.5, 4.0)));

TEST(RdpTest, SampledGaussianKnownRegime) {
  // For small q the leading term is ~ 2 q^2 alpha / sigma^2 (Mironov et
  // al. 2019, small-q expansion); check the order of magnitude.
  const double q = 0.001, sigma = 1.0;
  const double eps = SampledGaussianRdp(4, q, sigma);
  EXPECT_GT(eps, 0.0);
  EXPECT_LT(eps, 50.0 * q * q * 4.0 / (sigma * sigma));
}

TEST(RdpTest, DpEmMatchesEq3) {
  // eps(alpha) = (2K+1) alpha / (2 sigma_e^2).
  EXPECT_DOUBLE_EQ(DpEmRdp(2.0, 10.0, 3), 7.0 * 2.0 / 200.0);
  EXPECT_DOUBLE_EQ(DpEmRdp(10.0, 5.0, 1), 3.0 * 10.0 / 50.0);
}

TEST(RdpTest, PureDpCappedAtEpsilon) {
  // Small alpha: quadratic bound; large alpha: the trivial eps cap.
  EXPECT_DOUBLE_EQ(PureDpRdp(2.0, 0.1), std::min(2.0 * 2.0 * 0.01, 0.1));
  EXPECT_DOUBLE_EQ(PureDpRdp(1000.0, 0.1), 0.1);
}

TEST(RdpTest, RdpToDpConversion) {
  // eps_dp = eps_rdp + log(1/delta)/(alpha-1).
  EXPECT_NEAR(RdpToDp(11.0, 0.5, 1e-5), 0.5 + std::log(1e5) / 10.0, 1e-12);
}

TEST(RdpTest, ZcdpConversion) {
  const double rho = 0.01, delta = 1e-5;
  EXPECT_NEAR(ZcdpToDp(rho, delta),
              rho + 2.0 * std::sqrt(rho * std::log(1e5)), 1e-12);
}

TEST(RdpTest, Eq4FiniteForModerateParams) {
  const double ma = MomentsAccountantEq4(8, 0.01, 2.0);
  EXPECT_TRUE(std::isfinite(ma));
  EXPECT_GT(ma, 0.0);
}

TEST(RdpTest, Eq4GrowsWithLambda) {
  double prev = 0.0;
  for (std::size_t lam = 2; lam <= 16; ++lam) {
    const double ma = MomentsAccountantEq4(lam, 0.01, 2.0);
    if (!std::isfinite(ma)) break;
    EXPECT_GE(ma, prev);
    prev = ma;
  }
}

TEST(RdpTest, DefaultOrdersAreValid) {
  auto orders = DefaultRdpOrders();
  EXPECT_GE(orders.size(), 60u);
  for (double a : orders) EXPECT_GT(a, 1.0);
}

// ------------------------------------------------------------ Accountant

TEST(AccountantTest, EmptyAccountantCostsOnlyDeltaTerm) {
  RdpAccountant acc;
  const auto g = acc.GetEpsilon(1e-5);
  // min over alpha of log(1/delta)/(alpha-1) is attained at the largest
  // order in the grid.
  EXPECT_NEAR(g.epsilon, std::log(1e5) / (acc.orders().back() - 1.0), 1e-9);
  EXPECT_DOUBLE_EQ(g.best_order, acc.orders().back());
}

TEST(AccountantTest, CompositionIsAdditiveInRdp) {
  RdpAccountant a, b;
  a.AddGaussian(2.0, 10);
  b.AddGaussian(2.0, 5);
  b.AddGaussian(2.0, 5);
  for (std::size_t i = 0; i < a.rdp().size(); ++i) {
    EXPECT_NEAR(a.rdp()[i], b.rdp()[i], 1e-12);
  }
}

TEST(AccountantTest, MoreStepsMoreEpsilon) {
  RdpAccountant a, b;
  a.AddSampledGaussian(0.01, 1.5, 100);
  b.AddSampledGaussian(0.01, 1.5, 200);
  EXPECT_LT(a.GetEpsilon(1e-5).epsilon, b.GetEpsilon(1e-5).epsilon);
}

TEST(AccountantTest, SmallerDeltaMoreEpsilon) {
  RdpAccountant acc;
  acc.AddSampledGaussian(0.01, 1.5, 100);
  EXPECT_LT(acc.GetEpsilon(1e-3).epsilon, acc.GetEpsilon(1e-7).epsilon);
}

TEST(AccountantTest, AbadiRegimeSanity) {
  // The canonical DP-SGD setting q=0.01, sigma=4, T=10000, delta=1e-5
  // gives epsilon in the low single digits under RDP accounting.
  RdpAccountant acc;
  acc.AddSampledGaussian(0.01, 4.0, 10000);
  const double eps = acc.GetEpsilon(1e-5).epsilon;
  EXPECT_GT(eps, 0.5);
  EXPECT_LT(eps, 3.0);
}

TEST(AccountantTest, AddRdpValidatesAndAccumulates) {
  RdpAccountant acc;
  std::vector<double> costs(acc.orders().size(), 0.25);
  acc.AddRdp(costs);
  acc.AddRdp(costs);
  for (double v : acc.rdp()) EXPECT_DOUBLE_EQ(v, 0.5);
}

// --------------------------------------------------- P3GM composition

P3gmPrivacyParams TypicalParams() {
  P3gmPrivacyParams p;
  p.pca_epsilon = 0.1;
  p.em_sigma = 100.0;
  p.em_iters = 20;
  p.mog_components = 3;
  p.sgd_sigma = 2.0;
  p.sgd_sampling_rate = 0.01;
  p.sgd_steps = 1000;
  return p;
}

TEST(P3gmCompositionTest, RdpBeatsBaseline) {
  // The paper's Fig. 6 claim: RDP composition yields smaller epsilon than
  // zCDP + MA sequential composition, across noise scales.
  for (double sigma : {1.0, 2.0, 4.0, 8.0}) {
    P3gmPrivacyParams p = TypicalParams();
    p.sgd_sigma = sigma;
    const double rdp_eps = ComputeP3gmEpsilonRdp(p, 1e-5).epsilon;
    const double base_eps = ComputeP3gmEpsilonBaseline(p, 1e-5);
    EXPECT_LT(rdp_eps, base_eps) << "sigma=" << sigma;
  }
}

TEST(P3gmCompositionTest, EpsilonDecreasesInSigma) {
  P3gmPrivacyParams p = TypicalParams();
  double prev = std::numeric_limits<double>::infinity();
  for (double sigma : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    p.sgd_sigma = sigma;
    const double eps = ComputeP3gmEpsilonRdp(p, 1e-5).epsilon;
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

TEST(P3gmCompositionTest, ComponentsAddUp) {
  // Dropping a component can only reduce epsilon.
  P3gmPrivacyParams p = TypicalParams();
  const double full = ComputeP3gmEpsilonRdp(p, 1e-5).epsilon;
  P3gmPrivacyParams no_pca = p;
  no_pca.pca_epsilon = 0.0;
  EXPECT_LT(ComputeP3gmEpsilonRdp(no_pca, 1e-5).epsilon, full);
  P3gmPrivacyParams no_em = p;
  no_em.em_iters = 0;
  EXPECT_LT(ComputeP3gmEpsilonRdp(no_em, 1e-5).epsilon, full);
}

TEST(CalibrationTest, HitsTargetEpsilon) {
  P3gmPrivacyParams p = TypicalParams();
  auto sigma = CalibrateSgdSigma(p, 1.0, 1e-5);
  ASSERT_TRUE(sigma.ok());
  p.sgd_sigma = *sigma;
  const double eps = ComputeP3gmEpsilonRdp(p, 1e-5).epsilon;
  EXPECT_LE(eps, 1.0 + 1e-6);
  EXPECT_GT(eps, 0.95);  // Not over-noised.
}

TEST(CalibrationTest, UnreachableTargetFails) {
  P3gmPrivacyParams p = TypicalParams();
  p.em_sigma = 1.0;  // EM alone blows any epsilon <= 1 budget.
  EXPECT_FALSE(CalibrateSgdSigma(p, 1.0, 1e-5).ok());
}

TEST(CalibrationTest, LooseTargetReturnsLowerBound) {
  P3gmPrivacyParams p = TypicalParams();
  p.pca_epsilon = 0.0;
  p.em_iters = 0;
  p.sgd_steps = 10;
  auto sigma = CalibrateSgdSigma(p, 100.0, 1e-5, 0.3, 256.0);
  ASSERT_TRUE(sigma.ok());
  EXPECT_DOUBLE_EQ(*sigma, 0.3);
}

TEST(CalibrationTest, RejectsNonPositiveTarget) {
  EXPECT_FALSE(CalibrateSgdSigma(TypicalParams(), 0.0, 1e-5).ok());
}

// ------------------------------------------------- edge cases (audit PR)

TEST(AccountantEdgeTest, ZeroStepCompositionIsFree) {
  RdpAccountant empty, zero;
  zero.AddSampledGaussian(0.01, 1.5, 0);
  zero.AddGaussian(2.0, 0);
  zero.AddDpEm(10.0, 3, 0);
  for (std::size_t i = 0; i < zero.rdp().size(); ++i) {
    EXPECT_DOUBLE_EQ(zero.rdp()[i], 0.0);
  }
  EXPECT_DOUBLE_EQ(zero.GetEpsilon(1e-5).epsilon,
                   empty.GetEpsilon(1e-5).epsilon);
}

TEST(AccountantEdgeTest, FullBatchSampledGaussianEqualsPlainGaussian) {
  // q = 1 removes the subsampling amplification entirely; the accountant
  // must agree with the plain Gaussian path at every order and therefore
  // in the final epsilon.
  RdpAccountant sampled, plain;
  sampled.AddSampledGaussian(1.0, 2.0, 7);
  plain.AddGaussian(2.0, 7);
  for (std::size_t i = 0; i < sampled.rdp().size(); ++i) {
    EXPECT_NEAR(sampled.rdp()[i], plain.rdp()[i], 1e-9)
        << "order=" << sampled.orders()[i];
  }
  EXPECT_NEAR(sampled.GetEpsilon(1e-5).epsilon,
              plain.GetEpsilon(1e-5).epsilon, 1e-9);
}

TEST(AccountantEdgeTest, BestOrderStaysInsideTheGrid) {
  // A heavy accumulated cost pushes the optimum to the grid's low end; an
  // empty accountant to the high end. Both must clamp to grid members.
  RdpAccountant heavy;
  heavy.AddGaussian(0.5, 1000);
  const auto g_heavy = heavy.GetEpsilon(1e-5);
  EXPECT_DOUBLE_EQ(g_heavy.best_order, heavy.orders().front());

  RdpAccountant empty;
  const auto g_empty = empty.GetEpsilon(1e-5);
  EXPECT_DOUBLE_EQ(g_empty.best_order, empty.orders().back());
}

TEST(AccountantEdgeTest, TwoOrderGridStillMinimizes) {
  RdpAccountant acc({2.0, 64.0});
  acc.AddGaussian(1.0, 10);
  const auto g = acc.GetEpsilon(1e-5);
  const double at2 = RdpToDp(2.0, 10.0 * GaussianRdp(2.0, 1.0), 1e-5);
  const double at64 = RdpToDp(64.0, 10.0 * GaussianRdp(64.0, 1.0), 1e-5);
  EXPECT_NEAR(g.epsilon, std::min(at2, at64), 1e-12);
}

TEST(AccountantEdgeTest, PureDpConversionNearPureEpsilonAtLargeOrders) {
  // An (eps, 0)-DP release converted at delta > 0 costs at most eps plus
  // the vanishing delta term of the largest grid order.
  RdpAccountant acc;
  acc.AddPureDp(3.0);
  const double eps = acc.GetEpsilon(1e-5).epsilon;
  EXPECT_GE(eps, 3.0 - 1e-9);
  EXPECT_LE(eps, 3.0 + std::log(1e5) / (acc.orders().back() - 1.0) + 1e-9);
}

// High-precision long-double re-implementation of the accountant's
// conversion, used as an independent reference below.
long double ReferenceLogChoose(std::size_t n, std::size_t k) {
  return std::lgammal(static_cast<long double>(n + 1)) -
         std::lgammal(static_cast<long double>(k + 1)) -
         std::lgammal(static_cast<long double>(n - k + 1));
}

long double ReferenceSampledGaussianRdp(std::size_t alpha, long double q,
                                        long double sigma) {
  if (q <= 0.0L) return 0.0L;
  std::vector<long double> log_terms;
  for (std::size_t k = 0; k <= alpha; ++k) {
    long double lt = ReferenceLogChoose(alpha, k) +
                     static_cast<long double>(k * (k - 1)) /
                         (2.0L * sigma * sigma);
    if (k > 0) lt += static_cast<long double>(k) * std::log(q);
    if (k < alpha) {
      if (q >= 1.0L) continue;  // (1-q)^(alpha-k) = 0.
      lt += static_cast<long double>(alpha - k) * std::log1p(-q);
    }
    log_terms.push_back(lt);
  }
  long double max_lt = log_terms.front();
  for (long double lt : log_terms) max_lt = std::max(max_lt, lt);
  long double sum = 0.0L;
  for (long double lt : log_terms) sum += std::exp(lt - max_lt);
  return (max_lt + std::log(sum)) / static_cast<long double>(alpha - 1);
}

TEST(AccountantEdgeTest, RandomMechanismStacksMatchSlowReference) {
  // 10 random stacks of Gaussian / sampled-Gaussian / DP-EM / pure-DP
  // releases: the accountant's epsilon must match an independent
  // long-double recomputation to ~1e-9 relative.
  util::Rng rng(20240806);
  for (int stack = 0; stack < 10; ++stack) {
    RdpAccountant acc;
    struct Event {
      int kind;
      double a, b;
      std::size_t n, k;
    };
    std::vector<Event> events;
    const std::size_t num_events = 1 + rng.UniformInt(4);
    for (std::size_t e = 0; e < num_events; ++e) {
      Event ev;
      ev.kind = static_cast<int>(rng.UniformInt(4));
      switch (ev.kind) {
        case 0:  // Plain Gaussian.
          ev.a = rng.Uniform(0.8, 8.0);           // sigma
          ev.n = 1 + rng.UniformInt(50);          // count
          acc.AddGaussian(ev.a, ev.n);
          break;
        case 1:  // Sampled Gaussian.
          ev.b = rng.Uniform(0.001, 0.2);         // q
          ev.a = rng.Uniform(0.8, 8.0);           // sigma
          ev.n = 1 + rng.UniformInt(200);         // steps
          acc.AddSampledGaussian(ev.b, ev.a, ev.n);
          break;
        case 2:  // DP-EM.
          ev.a = rng.Uniform(5.0, 100.0);         // sigma_e
          ev.k = 1 + rng.UniformInt(5);           // components
          ev.n = 1 + rng.UniformInt(30);          // iters
          acc.AddDpEm(ev.a, ev.k, ev.n);
          break;
        default:  // Pure DP.
          ev.a = rng.Uniform(0.01, 1.0);          // eps
          acc.AddPureDp(ev.a);
          break;
      }
      events.push_back(ev);
    }

    const double delta = 1e-5;
    long double best = std::numeric_limits<long double>::infinity();
    for (double alpha : acc.orders()) {
      long double rdp = 0.0L;
      for (const Event& ev : events) {
        switch (ev.kind) {
          case 0:
            rdp += static_cast<long double>(ev.n) *
                   static_cast<long double>(alpha) /
                   (2.0L * static_cast<long double>(ev.a) *
                    static_cast<long double>(ev.a));
            break;
          case 1:
            rdp += static_cast<long double>(ev.n) *
                   ReferenceSampledGaussianRdp(
                       static_cast<std::size_t>(alpha),
                       static_cast<long double>(ev.b),
                       static_cast<long double>(ev.a));
            break;
          case 2:
            rdp += static_cast<long double>(ev.n) *
                   static_cast<long double>(2 * ev.k + 1) *
                   static_cast<long double>(alpha) /
                   (2.0L * static_cast<long double>(ev.a) *
                    static_cast<long double>(ev.a));
            break;
          default:
            rdp += std::min(
                2.0L * static_cast<long double>(alpha) *
                    static_cast<long double>(ev.a) *
                    static_cast<long double>(ev.a),
                static_cast<long double>(ev.a));
            break;
        }
      }
      const long double eps_dp =
          rdp + std::log(1.0L / static_cast<long double>(delta)) /
                    (static_cast<long double>(alpha) - 1.0L);
      best = std::min(best, eps_dp);
    }

    const double got = acc.GetEpsilon(delta).epsilon;
    EXPECT_NEAR(got, static_cast<double>(best),
                1e-9 * std::max(1.0, got))
        << "stack=" << stack;
  }
}

}  // namespace
}  // namespace dp
}  // namespace p3gm
