#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "dp/accountant.h"
#include "dp/rdp.h"

namespace p3gm {
namespace dp {
namespace {

// ------------------------------------------------------------- RDP forms

TEST(RdpTest, GaussianLinearInAlpha) {
  EXPECT_DOUBLE_EQ(GaussianRdp(2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(GaussianRdp(4.0, 2.0), 0.5);
}

TEST(RdpTest, SampledGaussianZeroRateIsFree) {
  EXPECT_DOUBLE_EQ(SampledGaussianRdp(8, 0.0, 1.0), 0.0);
}

TEST(RdpTest, SampledGaussianFullRateEqualsGaussian) {
  EXPECT_NEAR(SampledGaussianRdp(8, 1.0, 2.0), GaussianRdp(8.0, 2.0), 1e-12);
}

TEST(RdpTest, SampledGaussianBelowGaussian) {
  // Subsampling amplifies privacy: cost must be below the unsampled one.
  for (std::size_t alpha : {2, 4, 8, 16, 32}) {
    EXPECT_LT(SampledGaussianRdp(alpha, 0.01, 1.0),
              GaussianRdp(static_cast<double>(alpha), 1.0));
  }
}

class SampledGaussianMonotonic
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SampledGaussianMonotonic, IncreasingInAlpha) {
  auto [q, sigma] = GetParam();
  double prev = 0.0;
  for (std::size_t alpha = 2; alpha <= 64; ++alpha) {
    const double eps = SampledGaussianRdp(alpha, q, sigma);
    EXPECT_GE(eps, prev - 1e-12) << "alpha=" << alpha;
    prev = eps;
  }
}

TEST_P(SampledGaussianMonotonic, DecreasingInSigma) {
  auto [q, sigma] = GetParam();
  EXPECT_GE(SampledGaussianRdp(16, q, sigma),
            SampledGaussianRdp(16, q, sigma * 2.0) - 1e-12);
}

TEST_P(SampledGaussianMonotonic, IncreasingInRate) {
  auto [q, sigma] = GetParam();
  if (q <= 0.5) {
    EXPECT_LE(SampledGaussianRdp(16, q, sigma),
              SampledGaussianRdp(16, q * 2.0, sigma) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SampledGaussianMonotonic,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.1),
                       ::testing::Values(0.8, 1.5, 4.0)));

TEST(RdpTest, SampledGaussianKnownRegime) {
  // For small q the leading term is ~ 2 q^2 alpha / sigma^2 (Mironov et
  // al. 2019, small-q expansion); check the order of magnitude.
  const double q = 0.001, sigma = 1.0;
  const double eps = SampledGaussianRdp(4, q, sigma);
  EXPECT_GT(eps, 0.0);
  EXPECT_LT(eps, 50.0 * q * q * 4.0 / (sigma * sigma));
}

TEST(RdpTest, DpEmMatchesEq3) {
  // eps(alpha) = (2K+1) alpha / (2 sigma_e^2).
  EXPECT_DOUBLE_EQ(DpEmRdp(2.0, 10.0, 3), 7.0 * 2.0 / 200.0);
  EXPECT_DOUBLE_EQ(DpEmRdp(10.0, 5.0, 1), 3.0 * 10.0 / 50.0);
}

TEST(RdpTest, PureDpCappedAtEpsilon) {
  // Small alpha: quadratic bound; large alpha: the trivial eps cap.
  EXPECT_DOUBLE_EQ(PureDpRdp(2.0, 0.1), std::min(2.0 * 2.0 * 0.01, 0.1));
  EXPECT_DOUBLE_EQ(PureDpRdp(1000.0, 0.1), 0.1);
}

TEST(RdpTest, RdpToDpConversion) {
  // eps_dp = eps_rdp + log(1/delta)/(alpha-1).
  EXPECT_NEAR(RdpToDp(11.0, 0.5, 1e-5), 0.5 + std::log(1e5) / 10.0, 1e-12);
}

TEST(RdpTest, ZcdpConversion) {
  const double rho = 0.01, delta = 1e-5;
  EXPECT_NEAR(ZcdpToDp(rho, delta),
              rho + 2.0 * std::sqrt(rho * std::log(1e5)), 1e-12);
}

TEST(RdpTest, Eq4FiniteForModerateParams) {
  const double ma = MomentsAccountantEq4(8, 0.01, 2.0);
  EXPECT_TRUE(std::isfinite(ma));
  EXPECT_GT(ma, 0.0);
}

TEST(RdpTest, Eq4GrowsWithLambda) {
  double prev = 0.0;
  for (std::size_t lam = 2; lam <= 16; ++lam) {
    const double ma = MomentsAccountantEq4(lam, 0.01, 2.0);
    if (!std::isfinite(ma)) break;
    EXPECT_GE(ma, prev);
    prev = ma;
  }
}

TEST(RdpTest, DefaultOrdersAreValid) {
  auto orders = DefaultRdpOrders();
  EXPECT_GE(orders.size(), 60u);
  for (double a : orders) EXPECT_GT(a, 1.0);
}

// ------------------------------------------------------------ Accountant

TEST(AccountantTest, EmptyAccountantCostsOnlyDeltaTerm) {
  RdpAccountant acc;
  const auto g = acc.GetEpsilon(1e-5);
  // min over alpha of log(1/delta)/(alpha-1) is attained at the largest
  // order in the grid.
  EXPECT_NEAR(g.epsilon, std::log(1e5) / (acc.orders().back() - 1.0), 1e-9);
  EXPECT_DOUBLE_EQ(g.best_order, acc.orders().back());
}

TEST(AccountantTest, CompositionIsAdditiveInRdp) {
  RdpAccountant a, b;
  a.AddGaussian(2.0, 10);
  b.AddGaussian(2.0, 5);
  b.AddGaussian(2.0, 5);
  for (std::size_t i = 0; i < a.rdp().size(); ++i) {
    EXPECT_NEAR(a.rdp()[i], b.rdp()[i], 1e-12);
  }
}

TEST(AccountantTest, MoreStepsMoreEpsilon) {
  RdpAccountant a, b;
  a.AddSampledGaussian(0.01, 1.5, 100);
  b.AddSampledGaussian(0.01, 1.5, 200);
  EXPECT_LT(a.GetEpsilon(1e-5).epsilon, b.GetEpsilon(1e-5).epsilon);
}

TEST(AccountantTest, SmallerDeltaMoreEpsilon) {
  RdpAccountant acc;
  acc.AddSampledGaussian(0.01, 1.5, 100);
  EXPECT_LT(acc.GetEpsilon(1e-3).epsilon, acc.GetEpsilon(1e-7).epsilon);
}

TEST(AccountantTest, AbadiRegimeSanity) {
  // The canonical DP-SGD setting q=0.01, sigma=4, T=10000, delta=1e-5
  // gives epsilon in the low single digits under RDP accounting.
  RdpAccountant acc;
  acc.AddSampledGaussian(0.01, 4.0, 10000);
  const double eps = acc.GetEpsilon(1e-5).epsilon;
  EXPECT_GT(eps, 0.5);
  EXPECT_LT(eps, 3.0);
}

TEST(AccountantTest, AddRdpValidatesAndAccumulates) {
  RdpAccountant acc;
  std::vector<double> costs(acc.orders().size(), 0.25);
  acc.AddRdp(costs);
  acc.AddRdp(costs);
  for (double v : acc.rdp()) EXPECT_DOUBLE_EQ(v, 0.5);
}

// --------------------------------------------------- P3GM composition

P3gmPrivacyParams TypicalParams() {
  P3gmPrivacyParams p;
  p.pca_epsilon = 0.1;
  p.em_sigma = 100.0;
  p.em_iters = 20;
  p.mog_components = 3;
  p.sgd_sigma = 2.0;
  p.sgd_sampling_rate = 0.01;
  p.sgd_steps = 1000;
  return p;
}

TEST(P3gmCompositionTest, RdpBeatsBaseline) {
  // The paper's Fig. 6 claim: RDP composition yields smaller epsilon than
  // zCDP + MA sequential composition, across noise scales.
  for (double sigma : {1.0, 2.0, 4.0, 8.0}) {
    P3gmPrivacyParams p = TypicalParams();
    p.sgd_sigma = sigma;
    const double rdp_eps = ComputeP3gmEpsilonRdp(p, 1e-5).epsilon;
    const double base_eps = ComputeP3gmEpsilonBaseline(p, 1e-5);
    EXPECT_LT(rdp_eps, base_eps) << "sigma=" << sigma;
  }
}

TEST(P3gmCompositionTest, EpsilonDecreasesInSigma) {
  P3gmPrivacyParams p = TypicalParams();
  double prev = std::numeric_limits<double>::infinity();
  for (double sigma : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    p.sgd_sigma = sigma;
    const double eps = ComputeP3gmEpsilonRdp(p, 1e-5).epsilon;
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

TEST(P3gmCompositionTest, ComponentsAddUp) {
  // Dropping a component can only reduce epsilon.
  P3gmPrivacyParams p = TypicalParams();
  const double full = ComputeP3gmEpsilonRdp(p, 1e-5).epsilon;
  P3gmPrivacyParams no_pca = p;
  no_pca.pca_epsilon = 0.0;
  EXPECT_LT(ComputeP3gmEpsilonRdp(no_pca, 1e-5).epsilon, full);
  P3gmPrivacyParams no_em = p;
  no_em.em_iters = 0;
  EXPECT_LT(ComputeP3gmEpsilonRdp(no_em, 1e-5).epsilon, full);
}

TEST(CalibrationTest, HitsTargetEpsilon) {
  P3gmPrivacyParams p = TypicalParams();
  auto sigma = CalibrateSgdSigma(p, 1.0, 1e-5);
  ASSERT_TRUE(sigma.ok());
  p.sgd_sigma = *sigma;
  const double eps = ComputeP3gmEpsilonRdp(p, 1e-5).epsilon;
  EXPECT_LE(eps, 1.0 + 1e-6);
  EXPECT_GT(eps, 0.95);  // Not over-noised.
}

TEST(CalibrationTest, UnreachableTargetFails) {
  P3gmPrivacyParams p = TypicalParams();
  p.em_sigma = 1.0;  // EM alone blows any epsilon <= 1 budget.
  EXPECT_FALSE(CalibrateSgdSigma(p, 1.0, 1e-5).ok());
}

TEST(CalibrationTest, LooseTargetReturnsLowerBound) {
  P3gmPrivacyParams p = TypicalParams();
  p.pca_epsilon = 0.0;
  p.em_iters = 0;
  p.sgd_steps = 10;
  auto sigma = CalibrateSgdSigma(p, 100.0, 1e-5, 0.3, 256.0);
  ASSERT_TRUE(sigma.ok());
  EXPECT_DOUBLE_EQ(*sigma, 0.3);
}

TEST(CalibrationTest, RejectsNonPositiveTarget) {
  EXPECT_FALSE(CalibrateSgdSigma(TypicalParams(), 0.0, 1e-5).ok());
}

}  // namespace
}  // namespace dp
}  // namespace p3gm
