// Exhaustive equivalence suite for the planned decoder runtime
// (src/infer): every test pins the planned path bit-for-bit — raw
// memcmp on the doubles, stricter than operator== (it distinguishes
// -0.0 from +0.0) — against the reference nn/linalg forward pass, per
// the accumulation-order contract in docs/inference.md.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/release.h"
#include "infer/kernels.h"
#include "infer/plan.h"
#include "linalg/matrix.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "obs/observability.h"
#include "obs/registry.h"
#include "stats/gmm.h"
#include "util/rng.h"

namespace p3gm {
namespace {

// --- helpers -------------------------------------------------------------

testing::AssertionResult BitIdentical(const linalg::Matrix& a,
                                      const linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0) {
    return testing::AssertionSuccess();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(double)) != 0) {
      std::ostringstream os;
      os.precision(17);
      os << "first bit difference at flat index " << i << " (row "
         << i / a.cols() << ", col " << i % a.cols() << "): " << a.data()[i]
         << " vs " << b.data()[i];
      return testing::AssertionFailure() << os.str();
    }
  }
  return testing::AssertionFailure() << "memcmp mismatch not located";
}

linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                            util::Rng* rng) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Normal();
  return m;
}

/// Restores the planned-decode switch on scope exit.
class ScopedPlannedDecode {
 public:
  explicit ScopedPlannedDecode(bool enabled)
      : previous_(infer::PlannedDecodeEnabled()) {
    infer::SetPlannedDecodeEnabled(enabled);
  }
  ~ScopedPlannedDecode() { infer::SetPlannedDecodeEnabled(previous_); }

 private:
  bool previous_;
};

/// Sets P3GM_INFER_FORCE_SCALAR=1 for the scope (ActiveTier re-reads the
/// environment on every call, so this flips the dispatch immediately).
class ScopedForceScalar {
 public:
  ScopedForceScalar() { ::setenv("P3GM_INFER_FORCE_SCALAR", "1", 1); }
  ~ScopedForceScalar() { ::unsetenv("P3GM_INFER_FORCE_SCALAR"); }
};

struct LayerShape {
  std::size_t out;
  infer::Activation act;
};

/// Builds the same architecture twice — a reference nn::Sequential and a
/// compiled DecoderPlan sharing the exact same weights — and returns
/// both forward passes on `x`.
struct ForwardPair {
  linalg::Matrix reference;
  linalg::Matrix planned;
};

ForwardPair RunBothPaths(std::size_t in_dim,
                         const std::vector<LayerShape>& shapes,
                         const linalg::Matrix& x, util::Rng* rng) {
  std::vector<linalg::Matrix> weights;
  std::vector<linalg::Matrix> biases;
  std::size_t prev = in_dim;
  for (const LayerShape& s : shapes) {
    weights.push_back(RandomMatrix(prev, s.out, rng));
    biases.push_back(RandomMatrix(1, s.out, rng));
    prev = s.out;
  }

  // Reference: nn::Sequential of Linear + activation layers with the
  // generated weights patched in (Linear's own init is overwritten).
  nn::Sequential seq("ref");
  util::Rng init_rng(7);
  prev = in_dim;
  for (std::size_t l = 0; l < shapes.size(); ++l) {
    nn::Linear* lin =
        seq.Emplace<nn::Linear>("l" + std::to_string(l), prev,
                                shapes[l].out, &init_rng);
    lin->weight().value = weights[l];
    lin->bias().value = biases[l];
    switch (shapes[l].act) {
      case infer::Activation::kRelu:
        seq.Emplace<nn::Relu>();
        break;
      case infer::Activation::kSigmoid:
        seq.Emplace<nn::Sigmoid>();
        break;
      case infer::Activation::kTanh:
        seq.Emplace<nn::Tanh>();
        break;
      case infer::Activation::kIdentity:
      case infer::Activation::kClamp01:
        break;  // kClamp01 applied manually below.
    }
    prev = shapes[l].out;
  }

  ForwardPair pair;
  pair.reference = seq.Forward(x, /*train=*/false);
  for (std::size_t l = 0; l < shapes.size(); ++l) {
    if (shapes[l].act == infer::Activation::kClamp01 &&
        l + 1 == shapes.size()) {
      double* d = pair.reference.data();
      for (std::size_t i = 0; i < pair.reference.size(); ++i) {
        d[i] = std::clamp(d[i], 0.0, 1.0);
      }
    }
  }

  std::vector<infer::LayerSpec> specs;
  for (std::size_t l = 0; l < shapes.size(); ++l) {
    specs.push_back({&weights[l], &biases[l], shapes[l].act});
  }
  util::Result<infer::DecoderPlan> plan = infer::DecoderPlan::Compile(specs);
  EXPECT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->Execute(x, &pair.planned).ok());
  return pair;
}

core::ReleasePackage MakeDecodePackage(core::DecoderType type,
                                       std::size_t latent, std::size_t hidden,
                                       std::size_t out, std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix means(2, latent);
  linalg::Matrix vars(2, latent, 1.0);
  for (std::size_t i = 0; i < means.size(); ++i) {
    means.data()[i] = rng.Normal();
  }
  auto prior = stats::GaussianMixture::Create({0.5, 0.5}, std::move(means),
                                              std::move(vars));
  EXPECT_TRUE(prior.ok());
  auto pkg = core::ReleasePackage::FromParts(
      "equiv", /*num_classes=*/0, type, std::move(prior).ValueOrDie(),
      RandomMatrix(latent, hidden, &rng), RandomMatrix(1, hidden, &rng),
      RandomMatrix(hidden, out, &rng), RandomMatrix(1, out, &rng));
  EXPECT_TRUE(pkg.ok()) << pkg.status();
  return std::move(pkg).ValueOrDie();
}

// --- property-based planned vs. Sequential ------------------------------

// Random architectures over the shape grid the kernels care about:
// widths straddling the 8-column panel (1, 7, 8, 9, ...), prime and
// power-of-two batches, depths 1-4, every fusable activation. Each
// architecture must reproduce the reference forward pass bit-for-bit.
TEST(InferEquivalence, RandomArchitecturesMatchSequentialBitForBit) {
  const std::size_t kWidths[] = {1, 2, 3, 7, 8, 9, 16, 31,
                                 32, 33, 63, 64, 65, 127, 128, 257};
  const std::size_t kBatches[] = {1, 2, 3, 5, 8, 13, 17, 31, 64, 257};
  const infer::Activation kActs[] = {
      infer::Activation::kIdentity, infer::Activation::kRelu,
      infer::Activation::kSigmoid, infer::Activation::kTanh};
  util::Rng rng(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t depth = 1 + rng.UniformInt(4);
    const std::size_t in_dim =
        kWidths[rng.UniformInt(std::size(kWidths))];
    const std::size_t batch =
        kBatches[rng.UniformInt(std::size(kBatches))];
    std::vector<LayerShape> shapes;
    for (std::size_t l = 0; l < depth; ++l) {
      shapes.push_back({kWidths[rng.UniformInt(std::size(kWidths))],
                        kActs[rng.UniformInt(std::size(kActs))]});
    }
    linalg::Matrix x = RandomMatrix(batch, in_dim, &rng);
    ForwardPair pair = RunBothPaths(in_dim, shapes, x, &rng);
    std::string desc = "trial " + std::to_string(trial) + ": batch " +
                       std::to_string(batch) + ", dims " +
                       std::to_string(in_dim);
    for (const LayerShape& s : shapes) {
      desc += "->" + std::to_string(s.out);
      desc += infer::ActivationName(s.act);
    }
    EXPECT_TRUE(BitIdentical(pair.reference, pair.planned)) << desc;
  }
}

// The largest shape the ISSUE pins: batch 1024 through a ragged-width
// stack, plus the clamp01 (Gaussian) head.
TEST(InferEquivalence, LargeBatchRaggedWidths) {
  util::Rng rng(99);
  const std::vector<LayerShape> shapes = {
      {257, infer::Activation::kRelu},
      {129, infer::Activation::kTanh},
      {66, infer::Activation::kClamp01},
  };
  linalg::Matrix x = RandomMatrix(1024, 31, &rng);
  ForwardPair pair = RunBothPaths(31, shapes, x, &rng);
  EXPECT_TRUE(BitIdentical(pair.reference, pair.planned));
}

// A batch decoded as one stacked matrix must equal the same rows decoded
// in odd-sized slices: each row's arithmetic is independent of its
// neighbors (this is what makes serve-side batching safe).
TEST(InferEquivalence, BatchSlicingInvariance) {
  util::Rng rng(4242);
  const std::vector<LayerShape> shapes = {{65, infer::Activation::kRelu},
                                          {33, infer::Activation::kSigmoid}};
  std::vector<linalg::Matrix> weights;
  std::vector<infer::LayerSpec> specs;
  weights.push_back(RandomMatrix(17, 65, &rng));
  weights.push_back(RandomMatrix(1, 65, &rng));
  weights.push_back(RandomMatrix(65, 33, &rng));
  weights.push_back(RandomMatrix(1, 33, &rng));
  specs.push_back({&weights[0], &weights[1], infer::Activation::kRelu});
  specs.push_back({&weights[2], &weights[3], infer::Activation::kSigmoid});
  auto plan = infer::DecoderPlan::Compile(specs);
  ASSERT_TRUE(plan.ok());

  const std::size_t batch = 103;
  linalg::Matrix x = RandomMatrix(batch, 17, &rng);
  linalg::Matrix stacked;
  ASSERT_TRUE(plan->Execute(x, &stacked).ok());

  std::size_t row = 0;
  for (std::size_t slice : {1u, 2u, 3u, 5u, 7u, 85u}) {
    linalg::Matrix xs(slice, 17);
    for (std::size_t r = 0; r < slice; ++r) {
      for (std::size_t c = 0; c < 17; ++c) xs(r, c) = x(row + r, c);
    }
    linalg::Matrix ys;
    ASSERT_TRUE(plan->Execute(xs, &ys).ok());
    for (std::size_t r = 0; r < slice; ++r) {
      ASSERT_EQ(std::memcmp(ys.row_data(r), stacked.row_data(row + r),
                            33 * sizeof(double)),
                0)
          << "slice starting at row " << row;
    }
    row += slice;
  }
  ASSERT_EQ(row, batch);
}

// --- dispatch-tier equivalence ------------------------------------------

// Forcing the scalar tier must reproduce the SIMD tier exactly: the
// AVX2 kernel vectorizes across output columns only, so each lane runs
// the scalar accumulation verbatim.
TEST(InferEquivalence, ForceScalarMatchesActiveTier) {
  util::Rng rng(777);
  const std::vector<LayerShape> shapes = {{131, infer::Activation::kRelu},
                                          {77, infer::Activation::kTanh},
                                          {29, infer::Activation::kSigmoid}};
  std::vector<linalg::Matrix> weights;
  std::size_t prev = 23;
  std::vector<infer::LayerSpec> specs;
  for (const LayerShape& s : shapes) {
    weights.push_back(RandomMatrix(prev, s.out, &rng));
    weights.push_back(RandomMatrix(1, s.out, &rng));
    prev = s.out;
  }
  for (std::size_t l = 0; l < shapes.size(); ++l) {
    specs.push_back({&weights[2 * l], &weights[2 * l + 1], shapes[l].act});
  }
  auto plan = infer::DecoderPlan::Compile(specs);
  ASSERT_TRUE(plan.ok());

  for (std::size_t batch : {1u, 3u, 4u, 9u, 64u, 250u}) {
    linalg::Matrix x = RandomMatrix(batch, 23, &rng);
    linalg::Matrix native;
    ASSERT_TRUE(plan->Execute(x, &native).ok());
    linalg::Matrix scalar;
    {
      ScopedForceScalar force;
      EXPECT_EQ(infer::ActiveTier(), infer::KernelTier::kScalar);
      ASSERT_TRUE(plan->Execute(x, &scalar).ok());
    }
    EXPECT_TRUE(BitIdentical(native, scalar)) << "batch " << batch;
  }
  // Outside the scope the dispatch returns to the hardware tier.
  if (infer::Avx2Supported()) {
    EXPECT_EQ(infer::ActiveTier(), infer::KernelTier::kAvx2);
  } else {
    EXPECT_EQ(infer::ActiveTier(), infer::KernelTier::kScalar);
  }
}

// --- DecodeLatent / Generate against the reference path -----------------

TEST(InferEquivalence, DecodeLatentMatchesReferenceBernoulli) {
  core::ReleasePackage pkg =
      MakeDecodePackage(core::DecoderType::kBernoulli, 11, 47, 30, 1);
  util::Rng rng(5);
  linalg::Matrix z = pkg.SampleLatent(129, &rng);
  linalg::Matrix planned, reference;
  {
    ScopedPlannedDecode on(true);
    auto r = pkg.DecodeLatent(z);
    ASSERT_TRUE(r.ok());
    planned = std::move(r).ValueOrDie();
  }
  {
    ScopedPlannedDecode off(false);
    auto r = pkg.DecodeLatent(z);
    ASSERT_TRUE(r.ok());
    reference = std::move(r).ValueOrDie();
  }
  EXPECT_TRUE(BitIdentical(reference, planned));
}

TEST(InferEquivalence, DecodeLatentMatchesReferenceGaussian) {
  core::ReleasePackage pkg =
      MakeDecodePackage(core::DecoderType::kGaussian, 7, 33, 21, 2);
  util::Rng rng(6);
  linalg::Matrix z = pkg.SampleLatent(64, &rng);
  linalg::Matrix planned, reference;
  {
    ScopedPlannedDecode on(true);
    auto r = pkg.DecodeLatent(z);
    ASSERT_TRUE(r.ok());
    planned = std::move(r).ValueOrDie();
  }
  {
    ScopedPlannedDecode off(false);
    auto r = pkg.DecodeLatent(z);
    ASSERT_TRUE(r.ok());
    reference = std::move(r).ValueOrDie();
  }
  EXPECT_TRUE(BitIdentical(reference, planned));
}

// Special values must flow through every path with identical bits:
// NaN propagates (relu/clamp keep it — the comparisons are false, and
// propagation never touches the sign bit), -0.0 survives relu
// untouched, denormals round identically, and exact zeros may be
// skipped (reference Matmul, sparse kernel) or streamed (dense kernel)
// with no bit difference, because the weights are finite. Infinities
// are deliberately absent: inf - inf manufactures a NaN whose sign
// depends on operand order of commutative ops, which the C level does
// not pin — the contract covers finite and NaN inputs.
TEST(InferEquivalence, SpecialValueLatentsMatchAcrossPathsAndTiers) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kDenorm = std::numeric_limits<double>::denorm_min();
  const double kSpecials[] = {kNan, -0.0, 0.0, kDenorm, -kDenorm, -1e30};
  util::Rng rng(31337);
  const std::vector<LayerShape> shapes = {{53, infer::Activation::kRelu},
                                          {21, infer::Activation::kClamp01}};
  for (std::size_t batch : {1u, 9u, 130u}) {
    linalg::Matrix x = RandomMatrix(batch, 19, &rng);
    // Scatter specials over ~1/3 of the entries, covering every row.
    for (std::size_t i = 0; i < x.size(); i += 3) {
      x.data()[i] = kSpecials[(i / 3) % std::size(kSpecials)];
    }
    ForwardPair pair = RunBothPaths(19, shapes, x, &rng);
    EXPECT_TRUE(BitIdentical(pair.reference, pair.planned))
        << "batch " << batch;
    // The scalar tier must agree with whatever tier just ran.
    std::vector<linalg::Matrix> weights;
    std::vector<infer::LayerSpec> specs;
    std::size_t prev = 19;
    util::Rng wrng(555);
    for (const LayerShape& s : shapes) {
      weights.push_back(RandomMatrix(prev, s.out, &wrng));
      weights.push_back(RandomMatrix(1, s.out, &wrng));
      prev = s.out;
    }
    for (std::size_t l = 0; l < shapes.size(); ++l) {
      specs.push_back({&weights[2 * l], &weights[2 * l + 1], shapes[l].act});
    }
    auto plan = infer::DecoderPlan::Compile(specs);
    ASSERT_TRUE(plan.ok());
    linalg::Matrix native, scalar;
    ASSERT_TRUE(plan->Execute(x, &native).ok());
    {
      ScopedForceScalar force;
      ASSERT_TRUE(plan->Execute(x, &scalar).ok());
    }
    EXPECT_TRUE(BitIdentical(native, scalar)) << "batch " << batch;
  }
}

// DecodeLatentInto is the serving batcher's entry point: same bytes as
// DecodeLatent under either runtime, with the caller's buffer reused.
TEST(InferEquivalence, DecodeLatentIntoMatchesDecodeLatent) {
  core::ReleasePackage pkg =
      MakeDecodePackage(core::DecoderType::kGaussian, 9, 41, 26, 3);
  util::Rng rng(7);
  linalg::Matrix z = pkg.SampleLatent(77, &rng);
  for (const bool planned : {true, false}) {
    ScopedPlannedDecode mode(planned);
    auto by_value = pkg.DecodeLatent(z);
    ASSERT_TRUE(by_value.ok());
    linalg::Matrix into;
    ASSERT_TRUE(pkg.DecodeLatentInto(z, &into).ok());
    EXPECT_TRUE(BitIdentical(*by_value, into))
        << "planned=" << planned;
  }
}

// One output buffer across growing and shrinking batches — the
// batcher's steady state. Every pass must match a fresh DecodeLatent,
// and a same-shape pass must not reallocate.
TEST(InferEquivalence, DecodeLatentIntoReusesBufferAcrossBatchSizes) {
  core::ReleasePackage pkg =
      MakeDecodePackage(core::DecoderType::kBernoulli, 8, 37, 22, 4);
  ScopedPlannedDecode on(true);
  linalg::Matrix out;
  util::Rng rng(8);
  for (const std::size_t rows : {64, 7, 128, 1, 128}) {
    linalg::Matrix z = pkg.SampleLatent(rows, &rng);
    ASSERT_TRUE(pkg.DecodeLatentInto(z, &out).ok());
    const double* buffer = out.data();
    auto fresh = pkg.DecodeLatent(z);
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(BitIdentical(*fresh, out)) << "rows=" << rows;
    // Same shape again: the buffer must be reused, not reallocated.
    ASSERT_TRUE(pkg.DecodeLatentInto(z, &out).ok());
    EXPECT_EQ(buffer, out.data()) << "rows=" << rows;
    EXPECT_TRUE(BitIdentical(*fresh, out)) << "rows=" << rows;
  }
}

TEST(InferEquivalence, DecodeLatentIntoRejectsBadShapes) {
  core::ReleasePackage pkg =
      MakeDecodePackage(core::DecoderType::kGaussian, 6, 19, 12, 5);
  linalg::Matrix wrong(3, pkg.latent_dim() + 1);
  linalg::Matrix out;
  EXPECT_FALSE(pkg.DecodeLatentInto(wrong, &out).ok());
}

// Fixed-seed Generate must produce identical datasets through both
// paths: sampling consumes the RNG identically and decoding is
// bit-identical, so features and labels match exactly.
TEST(InferEquivalence, GenerateEndToEndMatchesReference) {
  core::ReleasePackage pkg =
      MakeDecodePackage(core::DecoderType::kBernoulli, 5, 19, 12, 3);
  data::Dataset planned, reference;
  {
    ScopedPlannedDecode on(true);
    util::Rng rng(31337);
    auto r = pkg.Generate(200, &rng);
    ASSERT_TRUE(r.ok());
    planned = std::move(r).ValueOrDie();
  }
  {
    ScopedPlannedDecode off(false);
    util::Rng rng(31337);
    auto r = pkg.Generate(200, &rng);
    ASSERT_TRUE(r.ok());
    reference = std::move(r).ValueOrDie();
  }
  EXPECT_TRUE(BitIdentical(reference.features, planned.features));
  EXPECT_EQ(reference.labels, planned.labels);
}

// --- concurrency / reuse -------------------------------------------------

// The plan is immutable after Compile and scratch space is per-thread:
// concurrent Executes must be race-free (run under TSan via the
// `threads` label) and every result bit-identical to the serial one.
TEST(InferEquivalence, ConcurrentExecutesAreIdentical) {
  util::Rng rng(11);
  linalg::Matrix w1 = RandomMatrix(9, 41, &rng);
  linalg::Matrix b1 = RandomMatrix(1, 41, &rng);
  linalg::Matrix w2 = RandomMatrix(41, 13, &rng);
  linalg::Matrix b2 = RandomMatrix(1, 13, &rng);
  auto plan = infer::DecoderPlan::Compile(
      {{&w1, &b1, infer::Activation::kRelu},
       {&w2, &b2, infer::Activation::kSigmoid}});
  ASSERT_TRUE(plan.ok());
  linalg::Matrix x = RandomMatrix(57, 9, &rng);
  linalg::Matrix serial;
  ASSERT_TRUE(plan->Execute(x, &serial).ok());

  std::vector<std::thread> workers;
  std::vector<testing::AssertionResult> results(4,
                                                testing::AssertionSuccess());
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int iter = 0; iter < 25; ++iter) {
        linalg::Matrix out;
        if (!plan->Execute(x, &out).ok()) {
          results[t] = testing::AssertionFailure() << "Execute failed";
          return;
        }
        testing::AssertionResult cmp = BitIdentical(serial, out);
        if (!cmp) {
          results[t] = cmp;
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const testing::AssertionResult& r : results) EXPECT_TRUE(r);
}

// Batch sizes ramping up and down through one plan reuse the same
// thread-local arena; results must not depend on its history.
TEST(InferEquivalence, ArenaReuseAcrossBatchSizes) {
  util::Rng rng(13);
  linalg::Matrix w1 = RandomMatrix(6, 25, &rng);
  linalg::Matrix b1 = RandomMatrix(1, 25, &rng);
  linalg::Matrix w2 = RandomMatrix(25, 10, &rng);
  linalg::Matrix b2 = RandomMatrix(1, 10, &rng);
  auto plan = infer::DecoderPlan::Compile(
      {{&w1, &b1, infer::Activation::kRelu},
       {&w2, &b2, infer::Activation::kIdentity}});
  ASSERT_TRUE(plan.ok());

  linalg::Matrix x = RandomMatrix(512, 6, &rng);
  linalg::Matrix full;
  ASSERT_TRUE(plan->Execute(x, &full).ok());
  for (std::size_t batch : {512u, 1u, 300u, 512u, 7u}) {
    linalg::Matrix xs(batch, 6);
    for (std::size_t r = 0; r < batch; ++r) {
      for (std::size_t c = 0; c < 6; ++c) xs(r, c) = x(r, c);
    }
    linalg::Matrix ys;
    ASSERT_TRUE(plan->Execute(xs, &ys).ok());
    for (std::size_t r = 0; r < batch; ++r) {
      ASSERT_EQ(std::memcmp(ys.row_data(r), full.row_data(r),
                            10 * sizeof(double)),
                0)
          << "batch " << batch << " row " << r;
    }
  }
}

// --- observability -------------------------------------------------------

TEST(InferEquivalence, ExecuteBumpsObsCounters) {
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::Counter* hits = obs::Registry::Global().counter("infer.plan.hits");
  obs::Counter* rows = obs::Registry::Global().counter("infer.rows.decoded");
  const std::uint64_t hits_before = hits->value();
  const std::uint64_t rows_before = rows->value();

  util::Rng rng(17);
  linalg::Matrix w = RandomMatrix(4, 12, &rng);
  linalg::Matrix b = RandomMatrix(1, 12, &rng);
  auto plan = infer::DecoderPlan::Compile(
      {{&w, &b, infer::Activation::kSigmoid}});
  ASSERT_TRUE(plan.ok());
  linalg::Matrix x = RandomMatrix(23, 4, &rng);
  linalg::Matrix out;
  ASSERT_TRUE(plan->Execute(x, &out).ok());

  EXPECT_EQ(hits->value(), hits_before + 1);
  EXPECT_EQ(rows->value(), rows_before + 23);
  EXPECT_GT(
      obs::Registry::Global().gauge("infer.arena.bytes")->value(), 0.0);
  obs::SetEnabled(was_enabled);
}

}  // namespace
}  // namespace p3gm
