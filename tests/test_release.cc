#include <unistd.h>

#include <cstdio>

#include "gtest/gtest.h"
#include "core/release.h"
#include "core/synthesizer.h"
#include "data/synthetic.h"
#include "linalg/ops.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace p3gm {
namespace {

// ---------------------------------------------------------- serialization

TEST(SerializeTest, RoundTripScalarsAndStrings) {
  const std::string path = ::testing::TempDir() + "/p3gm_ser1.bin";
  {
    util::BinaryWriter w(path, 0xABCD1234, 7);
    ASSERT_TRUE(w.status().ok());
    w.WriteU64(42);
    w.WriteDouble(3.25);
    w.WriteString("hello");
    w.WriteDoubles({1.0, -2.0});
    ASSERT_TRUE(w.Close().ok());
  }
  util::BinaryReader r(path, 0xABCD1234, 7);
  ASSERT_TRUE(r.status().ok());
  EXPECT_EQ(*r.ReadU64(), 42u);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.25);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(*r.ReadDoubles(), (std::vector<double>{1.0, -2.0}));
}

TEST(SerializeTest, RejectsBadMagicAndVersion) {
  const std::string path = ::testing::TempDir() + "/p3gm_ser2.bin";
  {
    util::BinaryWriter w(path, 0x11111111, 1);
    w.WriteU64(1);
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_FALSE(util::BinaryReader(path, 0x22222222, 1).status().ok());
  EXPECT_FALSE(util::BinaryReader(path, 0x11111111, 2).status().ok());
}

TEST(SerializeTest, TruncatedReadFails) {
  const std::string path = ::testing::TempDir() + "/p3gm_ser3.bin";
  {
    util::BinaryWriter w(path, 0x1, 1);
    w.WriteU64(1000);  // Claims 1000 doubles follow; none do.
    ASSERT_TRUE(w.Close().ok());
  }
  util::BinaryReader r(path, 0x1, 1);
  ASSERT_TRUE(r.status().ok());
  EXPECT_FALSE(r.ReadDoubles().ok());
}

TEST(SerializeTest, MatrixRoundTrip) {
  const std::string path = ::testing::TempDir() + "/p3gm_ser4.bin";
  linalg::Matrix m = {{1, 2, 3}, {4, 5, 6}};
  {
    util::BinaryWriter w(path, 0x2, 1);
    w.WriteMatrix(m.rows(), m.cols(), m.data());
    ASSERT_TRUE(w.Close().ok());
  }
  util::BinaryReader r(path, 0x2, 1);
  std::size_t rows = 0, cols = 0;
  std::vector<double> flat;
  ASSERT_TRUE(r.ReadMatrix(&rows, &cols, &flat).ok());
  auto back = linalg::Matrix::FromFlat(rows, cols, std::move(flat));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

TEST(SerializeTest, MissingFileFails) {
  EXPECT_FALSE(
      util::BinaryReader("/nonexistent_p3gm/file.bin", 0x1, 1).status().ok());
}

// -------------------------------------------------------- ReleasePackage

class ReleaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::Dataset train = data::MakeAdultLike(600, 7);
    core::PgmOptions opt;
    opt.hidden = 32;
    opt.latent_dim = 4;
    opt.mog_components = 2;
    opt.epochs = 10;
    opt.batch_size = 60;
    synth_ = new core::PgmSynthesizer(opt);
    ASSERT_TRUE(synth_->Fit(train).ok());
    num_classes_ = train.num_classes;
    feature_dim_ = train.dim();
  }
  static void TearDownTestSuite() {
    delete synth_;
    synth_ = nullptr;
  }

  static core::PgmSynthesizer* synth_;
  static std::size_t num_classes_;
  static std::size_t feature_dim_;
};

core::PgmSynthesizer* ReleaseTest::synth_ = nullptr;
std::size_t ReleaseTest::num_classes_ = 0;
std::size_t ReleaseTest::feature_dim_ = 0;

TEST_F(ReleaseTest, FromPgmCapturesShapes) {
  auto pkg = core::ReleasePackage::FromPgm(&synth_->model(), num_classes_,
                                           "adult-test");
  ASSERT_TRUE(pkg.ok());
  EXPECT_EQ(pkg->latent_dim(), 4u);
  EXPECT_EQ(pkg->output_dim(), feature_dim_ + num_classes_);
  EXPECT_EQ(pkg->feature_dim(), feature_dim_);
  EXPECT_EQ(pkg->prior().num_components(), 2u);
}

TEST_F(ReleaseTest, GenerateMatchesModelDistribution) {
  auto pkg = core::ReleasePackage::FromPgm(&synth_->model(), num_classes_,
                                           "adult-test");
  ASSERT_TRUE(pkg.ok());
  util::Rng rng(3);
  auto gen = pkg->Generate(300, &rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->size(), 300u);
  EXPECT_EQ(gen->dim(), feature_dim_);
  // Package samples must agree with direct model samples: with the same
  // RNG state both paths sample the same prior and decoder.
  util::Rng rng2(3);
  auto direct = synth_->Generate(300, &rng2);
  ASSERT_TRUE(direct.ok());
  EXPECT_LT(linalg::MaxAbsDiff(gen->features, direct->features), 1e-9);
  EXPECT_EQ(gen->labels, direct->labels);
}

TEST_F(ReleaseTest, SaveLoadRoundTrip) {
  auto pkg = core::ReleasePackage::FromPgm(&synth_->model(), num_classes_,
                                           "adult-test");
  ASSERT_TRUE(pkg.ok());
  const std::string path = ::testing::TempDir() + "/p3gm_pkg.release";
  ASSERT_TRUE(pkg->Save(path).ok());
  auto loaded = core::ReleasePackage::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name(), "adult-test");
  EXPECT_EQ(loaded->latent_dim(), pkg->latent_dim());
  EXPECT_EQ(loaded->num_classes(), num_classes_);
  util::Rng r1(5), r2(5);
  auto a = pkg->Generate(50, &r1);
  auto b = loaded->Generate(50, &r2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(linalg::MaxAbsDiff(a->features, b->features), 1e-12);
  EXPECT_EQ(a->labels, b->labels);
}

TEST_F(ReleaseTest, LoadRejectsCorruptedFile) {
  auto pkg = core::ReleasePackage::FromPgm(&synth_->model(), num_classes_,
                                           "adult-test");
  ASSERT_TRUE(pkg.ok());
  const std::string path = ::testing::TempDir() + "/p3gm_pkg2.release";
  ASSERT_TRUE(pkg->Save(path).ok());
  // Truncate the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_EQ(ftruncate(fileno(f), size / 2), 0);
    std::fclose(f);
  }
  EXPECT_FALSE(core::ReleasePackage::Load(path).ok());
}

TEST(ReleaseVaeTest, FromVaeUsesStandardNormalPrior) {
  data::Dataset train = data::MakeAdultLike(300, 9);
  core::VaeOptions opt;
  opt.hidden = 16;
  opt.latent_dim = 3;
  opt.epochs = 3;
  opt.batch_size = 50;
  core::VaeSynthesizer synth(opt);
  ASSERT_TRUE(synth.Fit(train).ok());
  auto pkg = core::ReleasePackage::FromVae(&synth.model(), train.num_classes,
                                           "vae-test");
  ASSERT_TRUE(pkg.ok());
  EXPECT_EQ(pkg->prior().num_components(), 1u);
  EXPECT_EQ(pkg->prior().dim(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(pkg->prior().means()(0, j), 0.0);
    EXPECT_DOUBLE_EQ(pkg->prior().variances()(0, j), 1.0);
  }
  util::Rng rng(7);
  EXPECT_TRUE(pkg->Generate(20, &rng).ok());
}

TEST(ReleaseEdgeTest, GenerateZeroRowsFails) {
  data::Dataset train = data::MakeAdultLike(200, 11);
  core::PgmOptions opt;
  opt.hidden = 8;
  opt.latent_dim = 2;
  opt.mog_components = 1;
  opt.epochs = 2;
  opt.batch_size = 50;
  core::PgmSynthesizer synth(opt);
  ASSERT_TRUE(synth.Fit(train).ok());
  auto pkg = core::ReleasePackage::FromPgm(&synth.model(), 2, "x");
  ASSERT_TRUE(pkg.ok());
  util::Rng rng(13);
  EXPECT_FALSE(pkg->Generate(0, &rng).ok());
}

}  // namespace
}  // namespace p3gm
