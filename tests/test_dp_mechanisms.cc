#include <cmath>

#include "gtest/gtest.h"
#include "dp/mechanisms.h"
#include "linalg/eigen_sym.h"
#include "linalg/ops.h"

namespace p3gm {
namespace dp {
namespace {

// ---------------------------------------------------------------- ClipL2

TEST(ClipTest, LeavesShortVectorsAlone) {
  std::vector<double> v = {0.3, 0.4};  // Norm 0.5.
  ClipL2(1.0, &v);
  EXPECT_DOUBLE_EQ(v[0], 0.3);
  EXPECT_DOUBLE_EQ(v[1], 0.4);
}

TEST(ClipTest, ScalesLongVectorsToBound) {
  std::vector<double> v = {3.0, 4.0};  // Norm 5.
  ClipL2(1.0, &v);
  EXPECT_NEAR(linalg::Norm2(v), 1.0, 1e-12);
  // Direction preserved.
  EXPECT_NEAR(v[1] / v[0], 4.0 / 3.0, 1e-12);
}

TEST(ClipTest, ZeroVectorUnchanged) {
  std::vector<double> v = {0.0, 0.0};
  ClipL2(1.0, &v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(ClipTest, FactorFormula) {
  EXPECT_DOUBLE_EQ(ClipFactor(2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ClipFactor(2.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(ClipFactor(2.0, 0.0), 1.0);
}

class ClipNormTest : public ::testing::TestWithParam<double> {};

TEST_P(ClipNormTest, NormNeverExceedsBound) {
  util::Rng rng(5);
  const double c = GetParam();
  for (int t = 0; t < 100; ++t) {
    std::vector<double> v(8);
    for (double& x : v) x = rng.Normal(0.0, 3.0);
    ClipL2(c, &v);
    EXPECT_LE(linalg::Norm2(v), c + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, ClipNormTest,
                         ::testing::Values(0.1, 1.0, 5.0));

// ------------------------------------------------------------ Mechanisms

TEST(LaplaceMechanismTest, NoiseVarianceMatchesScale) {
  util::Rng rng(7);
  const double sensitivity = 2.0, eps = 0.5;  // Scale b = 4.
  const int n = 100000;
  std::vector<double> v(n, 0.0);
  LaplaceMechanism(sensitivity, eps, &v, &rng);
  double s2 = 0;
  for (double x : v) s2 += x * x;
  EXPECT_NEAR(s2 / n, 2.0 * 16.0, 1.5);  // Var = 2 b^2 = 32.
}

TEST(GaussianMechanismTest, NoiseStddevMatches) {
  util::Rng rng(11);
  const int n = 100000;
  std::vector<double> v(n, 0.0);
  GaussianMechanism(2.0, 1.5, &v, &rng);  // stddev = 3.
  double s2 = 0;
  for (double x : v) s2 += x * x;
  EXPECT_NEAR(std::sqrt(s2 / n), 3.0, 0.05);
}

TEST(GaussianMechanismTest, ZeroMultiplierIsNoop) {
  util::Rng rng(13);
  std::vector<double> v = {1.0, 2.0};
  GaussianMechanism(1.0, 0.0, &v, &rng);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(GaussianMechanismTest, MatrixOverloadPerturbsAllCells) {
  util::Rng rng(17);
  linalg::Matrix m(10, 10);
  GaussianMechanism(1.0, 1.0, &m, &rng);
  int nonzero = 0;
  for (std::size_t i = 0; i < m.size(); ++i) nonzero += (m.data()[i] != 0.0);
  EXPECT_EQ(nonzero, 100);
}

// ----------------------------------------------------------- Exponential

TEST(ExponentialMechanismTest, PrefersHighUtility) {
  util::Rng rng(19);
  std::vector<double> u = {0.0, 0.0, 100.0};
  int hits = 0;
  for (int t = 0; t < 200; ++t) {
    auto pick = ExponentialMechanism(u, 1.0, 2.0, &rng);
    ASSERT_TRUE(pick.ok());
    hits += (*pick == 2);
  }
  EXPECT_GT(hits, 195);
}

TEST(ExponentialMechanismTest, UniformWhenEqualUtility) {
  util::Rng rng(23);
  std::vector<double> u = {1.0, 1.0};
  int first = 0;
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    first += (*ExponentialMechanism(u, 1.0, 1.0, &rng) == 0);
  }
  EXPECT_NEAR(first / static_cast<double>(trials), 0.5, 0.02);
}

TEST(ExponentialMechanismTest, MatchesTheoreticalDistribution) {
  util::Rng rng(29);
  // P(i) ∝ exp(eps * u_i / 2): with u = {0, ln(4) * 2/eps}, P(1)/P(0) = 4.
  const double eps = 1.0;
  std::vector<double> u = {0.0, 2.0 * std::log(4.0) / eps};
  int second = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    second += (*ExponentialMechanism(u, 1.0, eps, &rng) == 1);
  }
  EXPECT_NEAR(second / static_cast<double>(trials), 0.8, 0.02);
}

TEST(ExponentialMechanismTest, ValidatesInput) {
  util::Rng rng(31);
  EXPECT_FALSE(ExponentialMechanism({}, 1.0, 1.0, &rng).ok());
  EXPECT_FALSE(ExponentialMechanism({1.0}, 0.0, 1.0, &rng).ok());
  EXPECT_FALSE(ExponentialMechanism({1.0}, 1.0, -1.0, &rng).ok());
}

TEST(ExponentialMechanismTest, HandlesExtremeUtilityGaps) {
  util::Rng rng(37);
  // Would overflow a naive exp() implementation.
  std::vector<double> u = {0.0, 1e6};
  auto pick = ExponentialMechanism(u, 1.0, 1.0, &rng);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 1u);
}

// ---------------------------------------------------------------- Wishart

TEST(WishartTest, ValidatesArguments) {
  util::Rng rng(41);
  EXPECT_FALSE(SampleWishart(0, 3, 1.0, &rng).ok());
  EXPECT_FALSE(SampleWishart(3, 1.5, 1.0, &rng).ok());  // df <= d-1.
  EXPECT_FALSE(SampleWishart(3, 4, 0.0, &rng).ok());
}

TEST(WishartTest, SamplesAreSymmetricPsd) {
  util::Rng rng(43);
  for (int t = 0; t < 10; ++t) {
    auto w = SampleWishart(5, 6.0, 0.3, &rng);
    ASSERT_TRUE(w.ok());
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        EXPECT_NEAR((*w)(i, j), (*w)(j, i), 1e-12);
      }
    }
    auto e = linalg::EigenSym(*w);
    ASSERT_TRUE(e.ok());
    for (double v : e->values) EXPECT_GE(v, -1e-9);
  }
}

TEST(WishartTest, MeanIsDfTimesScale) {
  // E[W_d(df, c I)] = df * c * I.
  util::Rng rng(47);
  const std::size_t d = 3;
  const double df = d + 1.0, c = 0.5;
  linalg::Matrix mean(d, d);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    mean += *SampleWishart(d, df, c, &rng);
  }
  mean *= 1.0 / trials;
  for (std::size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(mean(i, i), df * c, 0.1);
    for (std::size_t j = 0; j < d; ++j) {
      if (i != j) EXPECT_NEAR(mean(i, j), 0.0, 0.05);
    }
  }
}

}  // namespace
}  // namespace dp
}  // namespace p3gm
