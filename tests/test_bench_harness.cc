// Bench-harness tests: robust statistics (median/MAD/outlier rejection
// and the deterministic bootstrap), the BenchSuite measurement loop and
// its BENCH_*.json round trip, the perf-counter fallback tier, the
// compiled-out allocation tracker, and the bench_compare decision rule
// that gates perf regressions in CI.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/bench/compare.h"
#include "obs/bench/harness.h"
#include "obs/bench/stats.h"
#include "obs/perf/alloc.h"
#include "obs/perf/counters.h"

namespace p3gm {
namespace obs {
namespace bench {
namespace {

// ------------------------------------------------------------- stats

TEST(BenchStats, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
  EXPECT_TRUE(std::isnan(Median({})));
}

TEST(BenchStats, MadAroundCenter) {
  // |x - 2| over {1,2,3,10} = {1,0,1,8}; median of that is 1.
  EXPECT_DOUBLE_EQ(Mad({1.0, 2.0, 3.0, 10.0}, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(Mad({5.0, 5.0, 5.0}, 5.0), 0.0);
  EXPECT_TRUE(std::isnan(Mad({}, 0.0)));
}

TEST(BenchStats, RejectOutliersDropsOnlyTheOutlier) {
  const std::vector<double> v = {1.0, 1.1, 0.9, 1.05, 50.0};
  const std::vector<double> kept = RejectOutliers(v, 5.0);
  const std::vector<double> want = {1.0, 1.1, 0.9, 1.05};
  EXPECT_EQ(kept, want);  // Input order preserved.
}

TEST(BenchStats, RejectOutliersKeepsEverythingWhenMadIsZero) {
  // Constant samples have MAD 0; nothing can be "k MADs away".
  const std::vector<double> v = {2.0, 2.0, 2.0, 9.0};
  // MAD around median 2 is 0 -> no rejection even of the 9.
  EXPECT_EQ(RejectOutliers(v, 5.0), v);
  // Fewer than 3 samples: rejection disabled outright.
  const std::vector<double> two = {1.0, 100.0};
  EXPECT_EQ(RejectOutliers(two, 5.0), two);
}

TEST(BenchStats, BootstrapIsDeterministicAndBracketsMedian) {
  const std::vector<double> v = {1.0, 1.2, 0.9, 1.1, 1.05, 0.95};
  const Ci a = BootstrapMedianCi(v, 2000, 0.95, 42);
  const Ci b = BootstrapMedianCi(v, 2000, 0.95, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  const double med = Median(v);
  EXPECT_LE(a.lo, med);
  EXPECT_GE(a.hi, med);
  // Degenerate n == 1: the interval collapses onto the sample.
  const Ci one = BootstrapMedianCi({3.5}, 100, 0.95, 42);
  EXPECT_DOUBLE_EQ(one.lo, 3.5);
  EXPECT_DOUBLE_EQ(one.hi, 3.5);
}

TEST(BenchStats, SummarizeRejectsAndSummarizes) {
  const SampleStats s = Summarize({1.0, 1.1, 0.9, 1.05, 50.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_DOUBLE_EQ(s.min, 0.9);
  EXPECT_DOUBLE_EQ(s.max, 1.1);
  EXPECT_DOUBLE_EQ(s.median, 1.025);
  EXPECT_NEAR(s.mean, (1.0 + 1.1 + 0.9 + 1.05) / 4.0, 1e-12);
  EXPECT_LE(s.ci95_lo, s.median);
  EXPECT_GE(s.ci95_hi, s.median);

  const SampleStats empty = Summarize({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.rejected, 0u);
}

// ------------------------------------------------------------ harness

TEST(BenchHarness, RunExecutesWarmupPlusReps) {
  BenchSuite suite("test");
  int calls = 0;
  BenchOptions opt;
  opt.warmup = 2;
  opt.reps = 3;
  opt.reject_outliers = false;
  const BenchResult& r =
      suite.Run("count", [&] { ++calls; }, opt);
  EXPECT_EQ(calls, 5);  // warmup + reps invocations...
  EXPECT_EQ(r.samples_seconds.size(), 3u);  // ...but only reps measured.
  EXPECT_EQ(r.stats.n, 3u);
  for (double s : r.samples_seconds) EXPECT_GE(s, 0.0);
}

TEST(BenchHarness, RunInterleavedRoundRobinsAcrossBenches) {
  // Round r must measure every benchmark once before any benchmark gets
  // rep r+1 — the call sequence after warmup is a,b,a,b,a,b, not
  // a,a,a,b,b,b. That property is what makes machine-load phases hit
  // all benchmarks alike.
  BenchSuite suite("test");
  std::string order;
  BenchOptions opt;
  opt.warmup = 1;
  opt.reps = 3;
  opt.reject_outliers = false;
  suite.RunInterleaved(
      {{"a", [&] { order += 'a'; }}, {"b", [&] { order += 'b'; }}}, opt);
  EXPECT_EQ(order, "ab" + std::string("ababab"));  // warmup pass + rounds.
  ASSERT_EQ(suite.results().size(), 2u);
  EXPECT_EQ(suite.results()[0].name, "a");
  EXPECT_EQ(suite.results()[1].name, "b");
  for (const BenchResult& r : suite.results()) {
    EXPECT_EQ(r.stats.n, 3u);
    EXPECT_EQ(r.samples_seconds.size(), 3u);
  }
}

TEST(BenchHarness, FromEnvHonorsOverrides) {
  setenv("P3GM_BENCH_REPS", "7", 1);
  setenv("P3GM_BENCH_WARMUP", "0", 1);
  const BenchOptions opt = BenchOptions::FromEnv();
  EXPECT_EQ(opt.reps, 7);
  EXPECT_EQ(opt.warmup, 0);
  setenv("P3GM_BENCH_REPS", "not-a-number", 1);
  EXPECT_EQ(BenchOptions::FromEnv().reps, BenchOptions().reps);
  unsetenv("P3GM_BENCH_REPS");
  unsetenv("P3GM_BENCH_WARMUP");
}

TEST(BenchHarness, JsonRoundTripPreservesDataAndHostileNames) {
  BenchSuite suite("round\"trip\\suite");
  suite.runinfo().threads = 3;
  suite.runinfo().wall_seconds = 1.5;
  suite.RecordSample("a \"quoted\"\\bench", 0.25);
  suite.RecordSample("a \"quoted\"\\bench", 0.35);
  suite.RecordSample("plain", 1.0);

  BenchFileData loaded;
  std::string error;
  ASSERT_TRUE(ParseBenchJson(suite.ToJson(), &loaded, &error)) << error;
  EXPECT_EQ(loaded.runinfo.suite, "round\"trip\\suite");
  EXPECT_EQ(loaded.runinfo.schema, kBenchSchemaVersion);
  EXPECT_EQ(loaded.runinfo.threads, 3);
  EXPECT_DOUBLE_EQ(loaded.runinfo.wall_seconds, 1.5);
  ASSERT_EQ(loaded.benchmarks.size(), 2u);

  const BenchResult* q = loaded.Find("a \"quoted\"\\bench");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->samples_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(q->samples_seconds[0], 0.25);
  EXPECT_DOUBLE_EQ(q->samples_seconds[1], 0.35);
  EXPECT_DOUBLE_EQ(q->stats.median, 0.3);
  EXPECT_EQ(loaded.Find("absent"), nullptr);
}

TEST(BenchHarness, WriteAndLoadFileRoundTrip) {
  const std::string path = "test_bench_harness_tmp.json";
  {
    BenchSuite suite("file-suite");
    suite.RecordSample("io", 0.5);
    ASSERT_TRUE(suite.WriteJson(path));
  }
  BenchFileData loaded;
  std::string error;
  ASSERT_TRUE(LoadBenchFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.runinfo.suite, "file-suite");
  ASSERT_NE(loaded.Find("io"), nullptr);
  EXPECT_DOUBLE_EQ(loaded.Find("io")->stats.median, 0.5);
  std::remove(path.c_str());

  EXPECT_FALSE(LoadBenchFile("does_not_exist.json", &loaded, &error));
}

TEST(BenchHarness, ParseRejectsMalformedAndWrongSchema) {
  BenchFileData out;
  std::string error;
  EXPECT_FALSE(ParseBenchJson("{not json", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseBenchJson(
      "{\"schema\": \"p3gm-bench-v0\", \"_runinfo\": {\"suite\": \"x\"}, "
      "\"benchmarks\": []}",
      &out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

// ------------------------------------------------------ perf counters

TEST(PerfCounters, ForcedFallbackProducesPortableTier) {
  setenv("P3GM_PERF_NO_HW", "1", 1);
  EXPECT_FALSE(perf::HardwareCountersAvailable());

  perf::PerfCounters counters;
  counters.Start();
  volatile double spin = 0.0;
  for (int i = 0; i < 100000; ++i) spin = spin + 1.0;
  (void)spin;
  const perf::PerfSample sample = counters.Stop();
  EXPECT_FALSE(sample.hw_available);
  EXPECT_EQ(sample.cycles, 0u);
  EXPECT_GT(sample.wall_seconds, 0.0);
  EXPECT_GT(sample.max_rss_kb, 0u);

  // A suite measured under the fallback still emits valid JSON with the
  // hardware tier marked unavailable.
  BenchSuite suite("fallback");
  BenchOptions opt;
  opt.warmup = 0;
  opt.reps = 2;
  suite.Run("noop", [] {}, opt);
  BenchFileData loaded;
  std::string error;
  ASSERT_TRUE(ParseBenchJson(suite.ToJson(), &loaded, &error)) << error;
  EXPECT_FALSE(loaded.runinfo.hw_counters);
  unsetenv("P3GM_PERF_NO_HW");
}

TEST(PerfCounters, AccumulateAddsDeltasAndMaxesRss) {
  perf::PerfSample a;
  a.hw_available = true;
  a.cycles = 100;
  a.wall_seconds = 1.0;
  a.max_rss_kb = 500;
  perf::PerfSample b;
  b.hw_available = false;  // One fallback rep poisons the hw tier...
  b.cycles = 50;
  b.wall_seconds = 0.5;
  b.max_rss_kb = 800;
  a.Accumulate(b);
  EXPECT_FALSE(a.hw_available);  // ...available only if all reps were.
  EXPECT_EQ(a.cycles, 150u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 1.5);
  EXPECT_EQ(a.max_rss_kb, 800u);  // max, not sum.
}

// ------------------------------------------------------------- alloc

TEST(AllocTracking, CompiledOutMeansAllZeros) {
  if (perf::AllocTrackingCompiledIn()) {
    // Hooks live: allocating must move the counters.
    perf::AllocScope scope;
    std::vector<double>* v = new std::vector<double>(4096, 1.0);
    const perf::AllocStats delta = scope.Delta();
    delete v;
    EXPECT_GT(delta.alloc_count, 0u);
  } else {
    // Default build: the query API exists but everything reads zero.
    const perf::AllocStats stats = perf::CurrentAllocStats();
    EXPECT_EQ(stats.alloc_count, 0u);
    EXPECT_EQ(stats.bytes_allocated, 0u);
    perf::AllocScope scope;
    std::vector<double> v(4096, 1.0);
    EXPECT_GT(v[0], 0.0);
    const perf::AllocStats delta = scope.Delta();
    EXPECT_EQ(delta.alloc_count, 0u);
    EXPECT_EQ(delta.peak_live_bytes, 0u);
  }
}

// ------------------------------------------------------------ compare

// Builds a synthetic result whose median/CI are set directly; the
// decision rule only reads stats.
BenchResult MakeResult(const std::string& name, double median, double ci_lo,
                       double ci_hi) {
  BenchResult r;
  r.name = name;
  r.samples_seconds = {median};
  r.stats.n = 1;
  r.stats.median = median;
  r.stats.min = r.stats.max = r.stats.mean = median;
  r.stats.ci95_lo = ci_lo;
  r.stats.ci95_hi = ci_hi;
  return r;
}

TEST(BenchCompare, TwoTimesSlowdownWithDisjointCisRegresses) {
  const CompareOptions opt;
  const BenchResult base = MakeResult("k", 1.0, 0.95, 1.05);
  const BenchResult cand = MakeResult("k", 2.0, 1.9, 2.1);
  const Comparison c = CompareEntry(base, cand, opt);
  EXPECT_EQ(c.verdict, Verdict::kRegressed);
  EXPECT_DOUBLE_EQ(c.ratio, 2.0);
  EXPECT_TRUE(GateFails({c}, opt));
}

TEST(BenchCompare, IdenticalFilesPassTheGate) {
  const CompareOptions opt;
  const BenchResult base = MakeResult("k", 1.0, 0.95, 1.05);
  const Comparison c = CompareEntry(base, base, opt);
  EXPECT_EQ(c.verdict, Verdict::kSame);
  EXPECT_FALSE(GateFails({c}, opt));
}

TEST(BenchCompare, SlowdownWithinSlackIsSame) {
  // Over the median with disjoint CIs but inside the relative slack
  // (default 35%, sized to between-run container drift): leg 1 vetoes.
  const CompareOptions opt;
  const BenchResult base = MakeResult("k", 1.0, 0.999, 1.001);
  const BenchResult cand = MakeResult("k", 1.25, 1.249, 1.251);
  EXPECT_EQ(CompareEntry(base, cand, opt).verdict, Verdict::kSame);
  // Just past the slack with disjoint CIs: regression.
  const BenchResult slow = MakeResult("k", 1.4, 1.399, 1.401);
  EXPECT_EQ(CompareEntry(base, slow, opt).verdict, Verdict::kRegressed);
}

TEST(BenchCompare, OverlappingCisVetoRegression) {
  // 50% slower on the median but the CIs overlap (noisy samples): leg 2
  // vetoes, because the bootstrap cannot distinguish the two runs.
  const CompareOptions opt;
  const BenchResult base = MakeResult("k", 1.0, 0.5, 1.6);
  const BenchResult cand = MakeResult("k", 1.5, 1.0, 2.5);
  EXPECT_EQ(CompareEntry(base, cand, opt).verdict, Verdict::kSame);
}

TEST(BenchCompare, ImprovementsAreReportedButNeverFail) {
  const CompareOptions opt;
  const BenchResult base = MakeResult("k", 2.0, 1.9, 2.1);
  const BenchResult cand = MakeResult("k", 1.0, 0.95, 1.05);
  const Comparison c = CompareEntry(base, cand, opt);
  EXPECT_EQ(c.verdict, Verdict::kImproved);
  EXPECT_FALSE(GateFails({c}, opt));
}

TEST(BenchCompare, MissingAndNewEntries) {
  BenchFileData base, cand;
  base.benchmarks.push_back(MakeResult("only_in_base", 1.0, 0.9, 1.1));
  base.benchmarks.push_back(MakeResult("shared", 1.0, 0.9, 1.1));
  cand.benchmarks.push_back(MakeResult("shared", 1.0, 0.9, 1.1));
  cand.benchmarks.push_back(MakeResult("only_in_cand", 1.0, 0.9, 1.1));

  CompareOptions opt;
  const std::vector<Comparison> cs = CompareFiles(base, cand, opt);
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0].name, "only_in_base");
  EXPECT_EQ(cs[0].verdict, Verdict::kMissing);
  EXPECT_EQ(cs[1].verdict, Verdict::kSame);
  EXPECT_EQ(cs[2].name, "only_in_cand");
  EXPECT_EQ(cs[2].verdict, Verdict::kNew);

  // Missing entries fail only under --strict-missing.
  EXPECT_FALSE(GateFails(cs, opt));
  opt.fail_on_missing = true;
  EXPECT_TRUE(GateFails(cs, opt));

  const std::string report = FormatReport(cs, base, cand);
  EXPECT_NE(report.find("only_in_base"), std::string::npos);
  EXPECT_NE(report.find("missing"), std::string::npos);
}

TEST(BenchCompare, UniformSlowdownIsNormalizedAwayAsMachineDrift) {
  // Every benchmark 1.5x slower — the signature of a slower machine
  // phase, not a code regression. The geometric-mean drift factor
  // divides the whole candidate back onto the baseline.
  BenchFileData base, cand;
  for (const char* name : {"a", "b", "c"}) {
    base.benchmarks.push_back(MakeResult(name, 1.0, 0.99, 1.01));
    cand.benchmarks.push_back(MakeResult(name, 1.5, 1.485, 1.515));
  }
  CompareOptions opt;
  EXPECT_NEAR(DriftFactor(base, cand), 1.5, 1e-12);
  const std::vector<Comparison> cs = CompareFiles(base, cand, opt);
  ASSERT_EQ(cs.size(), 3u);
  for (const Comparison& c : cs) {
    EXPECT_EQ(c.verdict, Verdict::kSame);
    EXPECT_NEAR(c.drift, 1.5, 1e-12);
    EXPECT_NEAR(c.ratio, 1.5, 1e-12);  // Raw ratio is still reported.
  }
  EXPECT_FALSE(GateFails(cs, opt));
  // --no-normalize judges the raw medians and fails.
  opt.normalize_drift = false;
  EXPECT_TRUE(GateFails(CompareFiles(base, cand, opt), opt));
}

TEST(BenchCompare, SingleBenchRegressionSurvivesNormalization) {
  // One benchmark 3x slower while five stay flat: the 3x leaks only
  // 3^(1/6) ~ 1.20 into the geomean, so the normalized ratio ~2.5 still
  // clears the slack and the flat benchmarks stay kSame.
  BenchFileData base, cand;
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    base.benchmarks.push_back(MakeResult(name, 1.0, 0.99, 1.01));
    cand.benchmarks.push_back(MakeResult(name, 1.0, 0.99, 1.01));
  }
  base.benchmarks.push_back(MakeResult("hot", 1.0, 0.99, 1.01));
  cand.benchmarks.push_back(MakeResult("hot", 3.0, 2.97, 3.03));

  const CompareOptions opt;
  const double drift = DriftFactor(base, cand);
  EXPECT_NEAR(drift, std::pow(3.0, 1.0 / 6.0), 1e-12);
  const std::vector<Comparison> cs = CompareFiles(base, cand, opt);
  ASSERT_EQ(cs.size(), 6u);
  for (const Comparison& c : cs) {
    EXPECT_EQ(c.verdict,
              c.name == "hot" ? Verdict::kRegressed : Verdict::kSame)
        << c.name;
  }
  EXPECT_TRUE(GateFails(cs, opt));
}

TEST(BenchCompare, DriftFactorNeedsTwoSharedBenchmarks) {
  // With one shared benchmark a slowdown cannot be told apart from the
  // machine; normalization must not eat a genuine 2x regression there.
  BenchFileData base, cand;
  base.benchmarks.push_back(MakeResult("only", 1.0, 0.99, 1.01));
  cand.benchmarks.push_back(MakeResult("only", 2.0, 1.98, 2.02));
  EXPECT_DOUBLE_EQ(DriftFactor(base, cand), 1.0);
  const CompareOptions opt;
  const std::vector<Comparison> cs = CompareFiles(base, cand, opt);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].verdict, Verdict::kRegressed);
  EXPECT_TRUE(GateFails(cs, opt));
}

}  // namespace
}  // namespace bench
}  // namespace obs
}  // namespace p3gm
