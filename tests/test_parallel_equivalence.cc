// Serial/parallel equivalence harness: every parallelized kernel must
// produce BIT-IDENTICAL results (==, not near) at 1, 2, 3 and 8 threads.
// This is the proof obligation of the determinism contract documented in
// util/thread_pool.h — disjoint output slices, index-ordered reductions,
// and no shared RNG inside parallel regions.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "core/pgm.h"
#include "linalg/covariance.h"
#include "obs/ledger.h"
#include "obs/observability.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/dp_sgd.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "stats/dp_em.h"
#include "stats/gmm.h"
#include "util/thread_pool.h"
#include "util/rng.h"

namespace p3gm {
namespace {

constexpr std::size_t kThreadCounts[] = {2, 3, 8};

// Runs `fn` with the pool pinned to `threads`, restoring the automatic
// resolution afterwards.
template <typename Fn>
auto RunWithThreads(std::size_t threads, Fn fn) {
  util::SetNumThreads(threads);
  auto result = fn();
  util::SetNumThreads(0);
  return result;
}

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Normal();
  return m;
}

// Asserts fn() is bit-identical at every thread count. Result must
// support ==.
template <typename Fn>
void ExpectThreadInvariant(Fn fn, const char* what) {
  const auto serial = RunWithThreads(1, fn);
  for (std::size_t threads : kThreadCounts) {
    const auto parallel = RunWithThreads(threads, fn);
    EXPECT_TRUE(parallel == serial)
        << what << " differs at " << threads << " threads";
  }
}

// ------------------------------------------------------------- linalg

TEST(ParallelEquivalenceTest, Matmul) {
  // 83 rows: several grain-8 blocks plus a ragged tail.
  const linalg::Matrix a = RandomMatrix(83, 47, 1);
  const linalg::Matrix b = RandomMatrix(47, 31, 2);
  ExpectThreadInvariant([&] { return linalg::Matmul(a, b); }, "Matmul");
}

TEST(ParallelEquivalenceTest, MatmulTransA) {
  const linalg::Matrix a = RandomMatrix(47, 83, 3);
  const linalg::Matrix b = RandomMatrix(47, 29, 4);
  ExpectThreadInvariant([&] { return linalg::MatmulTransA(a, b); },
                        "MatmulTransA");
}

TEST(ParallelEquivalenceTest, MatmulTransB) {
  const linalg::Matrix a = RandomMatrix(83, 47, 5);
  const linalg::Matrix b = RandomMatrix(31, 47, 6);
  ExpectThreadInvariant([&] { return linalg::MatmulTransB(a, b); },
                        "MatmulTransB");
}

TEST(ParallelEquivalenceTest, RowSquaredNorms) {
  const linalg::Matrix m = RandomMatrix(333, 21, 7);
  ExpectThreadInvariant([&] { return linalg::RowSquaredNorms(m); },
                        "RowSquaredNorms");
}

TEST(ParallelEquivalenceTest, ScaleRowsAndAddRowVector) {
  const linalg::Matrix base = RandomMatrix(150, 17, 8);
  std::vector<double> scales(150), offset(17);
  util::Rng rng(9);
  for (double& s : scales) s = rng.Uniform(0.5, 2.0);
  for (double& o : offset) o = rng.Normal();
  ExpectThreadInvariant(
      [&] {
        linalg::Matrix m = base;
        linalg::ScaleRows(scales, &m);
        linalg::AddRowVector(offset, &m);
        return m;
      },
      "ScaleRows+AddRowVector");
}

TEST(ParallelEquivalenceTest, SyrkAndCovariance) {
  const linalg::Matrix x = RandomMatrix(211, 37, 10);
  ExpectThreadInvariant([&] { return linalg::Syrk(x); }, "Syrk");
  ExpectThreadInvariant([&] { return linalg::Covariance(x); },
                        "Covariance");
}

TEST(ParallelEquivalenceTest, MaxAbsDiff) {
  const linalg::Matrix a = RandomMatrix(200, 13, 11);
  const linalg::Matrix b = RandomMatrix(200, 13, 12);
  ExpectThreadInvariant([&] { return linalg::MaxAbsDiff(a, b); },
                        "MaxAbsDiff");
}

// -------------------------------------------------------------- stats

TEST(ParallelEquivalenceTest, GmmEStepViaFullFit) {
  // Three separated clusters; FitGmm exercises the parallel E-step, the
  // component-parallel M-step and MeanLogLikelihood (restart selection).
  util::Rng rng(13);
  linalg::Matrix x(240, 6);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double shift = static_cast<double>(i % 3) - 1.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      x(i, j) = rng.Normal(shift, 0.3);
    }
  }
  stats::EmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 8;
  opt.restarts = 2;
  opt.seed = 17;
  auto fit = [&] {
    auto model = stats::FitGmm(x, opt);
    EXPECT_TRUE(model.ok());
    return model->means().ConcatCols(model->variances());
  };
  ExpectThreadInvariant(fit, "FitGmm parameters");
}

TEST(ParallelEquivalenceTest, DpEmResponsibilities) {
  util::Rng data_rng(19);
  linalg::Matrix x(180, 5);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = data_rng.Normal(0.0, 0.8);
  }
  stats::DpEmOptions opt;
  opt.num_components = 3;
  opt.iters = 4;
  opt.noise_multiplier = 2.0;
  opt.seed = 23;
  auto fit = [&] {
    // Fresh identically seeded rng per run: DP noise is drawn strictly
    // serially, so the stream is identical regardless of thread count.
    util::Rng rng(29);
    auto result = stats::FitGmmDpEm(x, opt, &rng);
    EXPECT_TRUE(result.ok());
    return result->mixture.means().ConcatCols(result->mixture.variances());
  };
  ExpectThreadInvariant(fit, "FitGmmDpEm parameters");
}

// ----------------------------------------------------------------- nn

TEST(ParallelEquivalenceTest, FullDpSgdStep) {
  // One complete privatized gradient step on a 2-layer MLP, with noise:
  // norms (Goodfellow path), clip scales, clipped accumulation, noise
  // and averaging.
  const linalg::Matrix x = RandomMatrix(96, 12, 31);
  const linalg::Matrix dy = RandomMatrix(96, 4, 37);
  auto step = [&] {
    util::Rng rng(41);
    nn::Sequential net;
    net.Emplace<nn::Linear>("l1", 12, 10, &rng);
    net.Emplace<nn::Sigmoid>();
    net.Emplace<nn::Linear>("l2", 10, 4, &rng);
    net.Forward(x, true);
    net.Backward(dy, /*accumulate=*/false);
    nn::DpSgdOptions opt;
    opt.clip_norm = 0.7;
    opt.noise_multiplier = 1.3;
    opt.lot_size = 96;
    util::Rng noise_rng(43);
    nn::DpSgdStep sgd(opt, &noise_rng);
    EXPECT_TRUE(sgd.CollectSquaredNorms({&net}, x.rows()).ok());
    net.ZeroGrad();
    sgd.ApplyClippedAccumulation({&net});
    sgd.AddNoiseAndAverage(net.Parameters(), x.rows());
    linalg::Matrix packed(0, 0);
    bool first = true;
    for (nn::Parameter* p : net.Parameters()) {
      linalg::Matrix flat(1, p->size());
      for (std::size_t i = 0; i < p->size(); ++i) {
        flat(0, i) = p->grad.data()[i];
      }
      packed = first ? flat : packed.ConcatCols(flat);
      first = false;
    }
    return packed;
  };
  ExpectThreadInvariant(step, "DP-SGD privatized gradient");
}

// --------------------------------------------------------------- core

TEST(ParallelEquivalenceTest, EndToEndPgmFit) {
  // Small but complete P3GM run: DP-PCA + DP-EM prior + DP-SGD decoder,
  // then synthesis. Everything downstream of Fit must match bit-for-bit.
  util::Rng data_rng(47);
  linalg::Matrix x(72, 9);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = data_rng.Uniform();
  }
  core::PgmOptions opt;
  opt.hidden = 12;
  opt.latent_dim = 3;
  opt.mog_components = 2;
  opt.epochs = 2;
  opt.batch_size = 24;
  opt.em_iters = 3;
  opt.differentially_private = true;
  opt.sgd_sigma = 1.1;
  opt.seed = 53;
  auto fit = [&] {
    core::Pgm model(opt);
    EXPECT_TRUE(model.Fit(x).ok());
    // Flatten the entire fitted state — prior parameters, decoder
    // weights — plus synthesized rows into one row vector.
    std::vector<double> state;
    auto append = [&state](const linalg::Matrix& m) {
      state.insert(state.end(), m.data(), m.data() + m.size());
    };
    append(model.prior().means());
    append(model.prior().variances());
    state.insert(state.end(), model.prior().weights().begin(),
                 model.prior().weights().end());
    for (const linalg::Matrix& w : model.ExportDecoderWeights()) append(w);
    util::Rng sample_rng(59);
    append(model.Sample(6, &sample_rng));
    linalg::Matrix packed(1, state.size());
    for (std::size_t i = 0; i < state.size(); ++i) packed(0, i) = state[i];
    return packed;
  };
  ExpectThreadInvariant(fit, "Pgm::Fit + Sample");
}

TEST(ParallelEquivalenceTest, ObservabilityInvariance) {
  // Observation must be strictly passive: turning the telemetry layer on
  // may not change any computed value or consume any RNG. Same complete
  // P3GM run as EndToEndPgmFit, compared bit-for-bit with observability
  // off vs. on, serially and at 8 threads.
  util::Rng data_rng(47);
  linalg::Matrix x(72, 9);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = data_rng.Uniform();
  }
  core::PgmOptions opt;
  opt.hidden = 12;
  opt.latent_dim = 3;
  opt.mog_components = 2;
  opt.epochs = 2;
  opt.batch_size = 24;
  opt.em_iters = 3;
  opt.differentially_private = true;
  opt.sgd_sigma = 1.1;
  opt.seed = 53;
  auto fit = [&] {
    core::Pgm model(opt);
    EXPECT_TRUE(model.Fit(x).ok());
    std::vector<double> state;
    auto append = [&state](const linalg::Matrix& m) {
      state.insert(state.end(), m.data(), m.data() + m.size());
    };
    append(model.prior().means());
    append(model.prior().variances());
    state.insert(state.end(), model.prior().weights().begin(),
                 model.prior().weights().end());
    for (const linalg::Matrix& w : model.ExportDecoderWeights()) append(w);
    util::Rng sample_rng(59);
    append(model.Sample(6, &sample_rng));
    linalg::Matrix packed(1, state.size());
    for (std::size_t i = 0; i < state.size(); ++i) packed(0, i) = state[i];
    return packed;
  };
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    obs::SetEnabled(false);
    const auto dark = RunWithThreads(threads, fit);
    obs::SetEnabled(true);
    const auto observed = RunWithThreads(threads, fit);
    obs::SetEnabled(false);
    EXPECT_TRUE(observed == dark)
        << "observability changed the result at " << threads << " threads";
    if (obs::kCompiledIn) {
      // The observed run must actually have been observed — otherwise
      // this test proves nothing.
      EXPECT_GT(obs::TraceRecorder::Global().EventCount(), 0u);
      EXPECT_GT(obs::PrivacyLedger::Global().size(), 0u);
    }
    obs::Registry::Global().Reset();
    obs::TraceRecorder::Global().Clear();
    obs::PrivacyLedger::Global().Clear();
  }
}

}  // namespace
}  // namespace p3gm
