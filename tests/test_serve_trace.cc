// End-to-end tests for the serving path's request-scoped tracing:
// X-Request-Id / traceparent echo on every response, W3C traceparent
// ingestion, id uniqueness under concurrent clients, the batched decode
// span linking back to every coalesced request, Prometheus exposition
// at /v1/metrics?format=prometheus, the slow-request log, and the
// SIGQUIT flight-recorder dump.

#include <chrono>
#include <csignal>
#include <cstddef>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/observability.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "util/logging.h"

namespace p3gm {
namespace serve {
namespace {

using serve_test::MakePackage;
using serve_test::TempDir;

bool IsLowerHex(const std::string& s, std::size_t want_len) {
  if (s.size() != want_len) return false;
  for (char c : s) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

// Reads the whole file; empty string when absent.
std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ServeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Global().Reset();
    obs::TraceRecorder::Global().Clear();
    pkg_path_ = dir_.WritePackage(MakePackage("alpha"), "alpha");
  }

  void TearDown() override {
    util::SetLogSinkForTest(nullptr);
    obs::SetEnabled(false);
  }

  void StartServer(ServerOptions options) {
    options.port = 0;
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->Init({pkg_path_}).ok());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  TempDir dir_;
  std::string pkg_path_;
  std::unique_ptr<Server> server_;
  HttpClient client_;
};

TEST_F(ServeTraceTest, EveryResponseCarriesRequestIdAndTraceparent) {
  StartServer(ServerOptions());
  struct Case {
    std::string method, target, body;
  } cases[] = {
      {"GET", "/healthz", ""},
      {"GET", "/v1/models", ""},
      {"POST", "/v1/sample", "{\"model\": \"alpha\", \"n\": 2}"},
      {"POST", "/v1/sample", "not json"},       // 400 path.
      {"GET", "/definitely/not/there", ""},     // 404 path.
  };
  for (const Case& c : cases) {
    auto response = client_.Request(c.method, c.target, c.body);
    ASSERT_TRUE(response.ok()) << c.target << ": " << response.status();
    const std::string* id = response->FindHeader("X-Request-Id");
    ASSERT_NE(id, nullptr) << c.method << " " << c.target;
    EXPECT_TRUE(IsLowerHex(*id, 32)) << *id;
    const std::string* tp = response->FindHeader("traceparent");
    ASSERT_NE(tp, nullptr) << c.method << " " << c.target;
    // 00-<32 hex>-<16 hex>-01, trace id matching X-Request-Id.
    ASSERT_EQ(tp->size(), 55u) << *tp;
    EXPECT_EQ(tp->substr(0, 3), "00-");
    EXPECT_EQ(tp->substr(3, 32), *id);
    EXPECT_TRUE(IsLowerHex(tp->substr(36, 16), 16)) << *tp;
    EXPECT_EQ(tp->substr(52), "-01");
  }
}

TEST_F(ServeTraceTest, TraceparentIngestKeepsTraceIdMintsFreshSpan) {
  StartServer(ServerOptions());
  const std::string trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
  const std::string parent_id = "00f067aa0ba902b7";
  auto response = client_.Raw(
      "GET /healthz HTTP/1.1\r\nHost: t\r\ntraceparent: 00-" + trace_id +
      "-" + parent_id + "-01\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  const std::string* id = response->FindHeader("X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(*id, trace_id);  // The remote trace id is adopted...
  const std::string* tp = response->FindHeader("traceparent");
  ASSERT_NE(tp, nullptr);
  ASSERT_EQ(tp->size(), 55u);
  EXPECT_EQ(tp->substr(3, 32), trace_id);
  // ...but the echoed span id is a fresh local one, not the remote
  // parent (the daemon is a child span of the caller).
  EXPECT_NE(tp->substr(36, 16), parent_id);
  EXPECT_TRUE(IsLowerHex(tp->substr(36, 16), 16)) << *tp;
}

TEST_F(ServeTraceTest, MalformedTraceparentGetsFreshTraceId) {
  StartServer(ServerOptions());
  const char* bad[] = {
      "not a traceparent",
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
  };
  for (const char* header : bad) {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto response = client.Raw(std::string("GET /healthz HTTP/1.1\r\n") +
                               "Host: t\r\ntraceparent: " + header +
                               "\r\nConnection: close\r\n\r\n");
    ASSERT_TRUE(response.ok()) << header << ": " << response.status();
    const std::string* id = response->FindHeader("X-Request-Id");
    ASSERT_NE(id, nullptr) << header;
    EXPECT_TRUE(IsLowerHex(*id, 32)) << *id;
    EXPECT_NE(*id, "00000000000000000000000000000000") << header;
    EXPECT_NE(*id, "4bf92f3577b34da6a3ce929d0e0e4736") << header;
  }
}

TEST_F(ServeTraceTest, RequestIdsAreUniqueUnderConcurrentClients) {
  ServerOptions options;
  options.cache_entries = 8;  // Cache hits must still get unique ids.
  StartServer(options);
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 8;
  std::mutex mutex;
  std::set<std::string> ids;
  std::vector<std::string> errors;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        std::lock_guard<std::mutex> lock(mutex);
        errors.push_back("connect failed");
        return;
      }
      for (int i = 0; i < kRequestsPerThread; ++i) {
        auto response =
            client.Post("/v1/sample", "{\"model\": \"alpha\", \"n\": 3}");
        std::lock_guard<std::mutex> lock(mutex);
        if (!response.ok() || response->status != 200) {
          errors.push_back("request failed");
          continue;
        }
        const std::string* id = response->FindHeader("X-Request-Id");
        if (id == nullptr || !IsLowerHex(*id, 32)) {
          errors.push_back("bad X-Request-Id");
          continue;
        }
        ids.insert(*id);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_TRUE(errors.empty()) << errors.size() << " failures, e.g. "
                              << errors.front();
  // Every response got its own 128-bit trace id — no reuse across
  // threads, batches, or cache hits.
  EXPECT_EQ(ids.size(),
            static_cast<std::size_t>(kThreads * kRequestsPerThread));
}

TEST_F(ServeTraceTest, BatchDecodeSpanLinksEveryCoalescedRequest) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out";
  }
  StartServer(ServerOptions());
  constexpr int kThreads = 8;
  std::mutex mutex;
  std::set<std::string> response_ids;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      auto response = client.Post(
          "/v1/sample", "{\"model\": \"alpha\", \"n\": 4, \"fresh\": true}");
      if (!response.ok() || response->status != 200) return;
      const std::string* id = response->FindHeader("X-Request-Id");
      if (id == nullptr) return;
      std::lock_guard<std::mutex> lock(mutex);
      response_ids.insert(*id);
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(response_ids.size(), static_cast<std::size_t>(kThreads));

  // The batcher recorded one decode span per coalesced pass plus one
  // slice span per request, stamped with the request's trace identity.
  std::set<std::string> slice_trace_ids;
  int decode_spans = 0;
  for (const auto& event : obs::TraceRecorder::Global().Events()) {
    const std::string name = event.name;
    if (name == "serve.batch.decode") {
      ++decode_spans;
      EXPECT_TRUE(event.has_context());
    } else if (name == "serve.batch.slice") {
      EXPECT_TRUE(event.has_context());
      EXPECT_NE(event.parent_id, 0u)
          << "slice spans parent on the request span";
      obs::TraceContext ctx;
      ctx.trace_hi = event.trace_hi;
      ctx.trace_lo = event.trace_lo;
      slice_trace_ids.insert(obs::TraceIdHex(ctx));
    }
  }
  EXPECT_GE(decode_spans, 1);
  for (const std::string& id : response_ids) {
    EXPECT_TRUE(slice_trace_ids.count(id) > 0)
        << "request " << id << " has no slice span in the decode pass";
  }
}

TEST_F(ServeTraceTest, MetricsPrometheusFormat) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out";
  }
  ServerOptions options;
  options.cache_entries = 8;
  StartServer(options);
  const std::string body = "{\"model\": \"alpha\", \"n\": 4}";
  ASSERT_TRUE(client_.Post("/v1/sample", body).ok());  // Fresh.
  ASSERT_TRUE(client_.Post("/v1/sample", body).ok());  // Cache hit.

  auto response = client_.Get("/v1/metrics?format=prometheus");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  const std::string* content_type = response->FindHeader("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(*content_type, obs::PrometheusContentType());
  const std::string& text = response->body;
  EXPECT_NE(text.find("# TYPE serve_request_latency_seconds histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_request_latency_seconds_bucket{"
                      "endpoint=\"/v1/sample\",le=\"+Inf\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("endpoint=\"/v1/sample\",result=\"hit\""),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("endpoint=\"/v1/sample\",result=\"fresh\""),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_request_latency_seconds_count"),
            std::string::npos);
  EXPECT_NE(text.find("obs_flight_recorded_events"), std::string::npos);
  // Exactly one # TYPE line per metric family.
  EXPECT_EQ(text.find("# TYPE serve_request_latency_seconds histogram"),
            text.rfind("# TYPE serve_request_latency_seconds histogram"));

  // The JSON view still answers (default and explicit).
  auto json_response = client_.Get("/v1/metrics?format=json");
  ASSERT_TRUE(json_response.ok());
  EXPECT_EQ(json_response->status, 200);
  obs::json::Value parsed;
  std::string error;
  EXPECT_TRUE(obs::json::Parse(json_response->body, &parsed, &error))
      << error;

  // Unknown formats are rejected, not silently defaulted.
  auto bad = client_.Get("/v1/metrics?format=xml");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
}

TEST_F(ServeTraceTest, SlowRequestLogCarriesTraceId) {
  std::mutex mutex;
  std::vector<std::string> records;
  util::SetLogSinkForTest(
      [&](util::LogLevel, const std::string& record) {
        std::lock_guard<std::mutex> lock(mutex);
        records.push_back(record);
      });
  ServerOptions options;
  options.slow_request_ms = 1;
  StartServer(options);
  // A large fresh decode (50k rows serialized to JSON) takes well over
  // one millisecond end to end.
  auto response = client_.Post(
      "/v1/sample", "{\"model\": \"alpha\", \"n\": 50000, \"fresh\": true}");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  const std::string* id = response->FindHeader("X-Request-Id");
  ASSERT_NE(id, nullptr);

  std::lock_guard<std::mutex> lock(mutex);
  bool found = false;
  for (const std::string& record : records) {
    if (record.find("slow request") == std::string::npos) continue;
    found = true;
    EXPECT_NE(record.find("/v1/sample"), std::string::npos) << record;
    // Emitted inside the request's scope: the text format carries the
    // trace id of the request that was slow.
    EXPECT_NE(record.find(*id), std::string::npos) << record;
  }
  EXPECT_TRUE(found) << "no slow-request record among " << records.size()
                     << " captured records";
}

TEST_F(ServeTraceTest, SigquitDumpsFlightRecorder) {
  const std::string dump_path = dir_.path() + "/flight.dump";
  obs::InstallFlightDumpHandlers(dump_path);
  EXPECT_STREQ(obs::FlightDumpPath(), dump_path.c_str());
  StartServer(ServerOptions());
  ASSERT_TRUE(
      client_.Post("/v1/sample", "{\"model\": \"alpha\", \"n\": 2}").ok());

  ASSERT_EQ(::kill(::getpid(), SIGQUIT), 0);
  // The handler runs on whichever thread takes the signal; poll briefly.
  std::string dump;
  for (int i = 0; i < 200; ++i) {
    dump = Slurp(dump_path);
    if (dump.find("=== end flight recorder ===") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(dump.find("=== p3gm flight recorder ==="), std::string::npos);
  EXPECT_NE(dump.find("=== end flight recorder ==="), std::string::npos);
  // The last moments include the request lifecycle events recorded by
  // the serving path (written even though nothing crashed).
  EXPECT_NE(dump.find("serve.request.begin"), std::string::npos) << dump;
  EXPECT_NE(dump.find("serve.respond"), std::string::npos);
  // And the process kept running: SIGQUIT is dump-and-continue.
  auto health = client_.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
}

}  // namespace
}  // namespace serve
}  // namespace p3gm
