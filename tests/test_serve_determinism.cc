// Seed-determinism contract of POST /v1/sample (docs/serving.md):
// a request carrying an explicit "seed" returns rows that are a pure
// function of (package, seed, n) — bit-identical no matter how the
// request was batched, what else was in flight, or which server
// configuration handled it. The batcher achieves this by sampling each
// job's latents from its own Rng before the shared decoder pass, and
// the decoder computes every output row independently of its batch
// neighbours (see ReleasePackage::DecodeLatent).

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "audit/golden.h"
#include "gtest/gtest.h"
#include "infer/plan.h"
#include "obs/observability.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace p3gm {
namespace serve {
namespace {

using serve_test::MakePackage;
using serve_test::TempDir;

class ServeDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    pkg_path_ = dir_.WritePackage(MakePackage("alpha"), "alpha");
  }

  std::unique_ptr<Server> StartServer(std::size_t max_batch,
                                      bool planned_decode = true) {
    ServerOptions options;
    options.port = 0;
    options.max_batch = max_batch;
    options.planned_decode = planned_decode;
    auto server = std::make_unique<Server>(options);
    P3GM_CHECK(server->Init({pkg_path_}).ok());
    P3GM_CHECK(server->Start().ok());
    return server;
  }

  static std::string SampleBody(std::uint64_t seed, int n) {
    return "{\"model\": \"alpha\", \"n\": " + std::to_string(n) +
           ", \"seed\": " + std::to_string(seed) + "}";
  }

  TempDir dir_;
  std::string pkg_path_;
};

TEST_F(ServeDeterminismTest, RepeatedSeededRequestsAreBitIdentical) {
  auto server = StartServer(/*max_batch=*/8);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  auto first = client.Post("/v1/sample", SampleBody(42, 10));
  auto second = client.Post("/v1/sample", SampleBody(42, 10));
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->status, 200);
  // Byte-for-byte equality of the serialized body (%.17g round-trips
  // doubles exactly, so equal bytes == equal values).
  EXPECT_EQ(first->body, second->body);
}

TEST_F(ServeDeterminismTest, SeededResultIndependentOfBatchingConfig) {
  auto unbatched = StartServer(/*max_batch=*/1);
  auto batched = StartServer(/*max_batch=*/8);
  HttpClient client_a, client_b;
  ASSERT_TRUE(client_a.Connect("127.0.0.1", unbatched->port()).ok());
  ASSERT_TRUE(client_b.Connect("127.0.0.1", batched->port()).ok());
  for (const std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    auto a = client_a.Post("/v1/sample", SampleBody(seed, 16));
    auto b = client_b.Post("/v1/sample", SampleBody(seed, 16));
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->status, 200);
    ASSERT_EQ(b->status, 200);
    EXPECT_EQ(a->body, b->body) << "seed " << seed;
  }
}

TEST_F(ServeDeterminismTest, SeededResultIndependentOfCoalescing) {
  // Reference answers, taken one at a time (each request is its own
  // batch of one).
  auto server = StartServer(/*max_batch=*/8);
  const int kClients = 8;
  std::vector<std::string> reference(kClients);
  {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
    for (int i = 0; i < kClients; ++i) {
      auto response =
          client.Post("/v1/sample", SampleBody(1000 + i, 5 + i));
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->status, 200);
      reference[i] = response->body;
    }
  }
  // The same requests fired concurrently, so the batcher coalesces an
  // arbitrary subset of them into shared decoder passes.
  for (int round = 0; round < 5; ++round) {
    std::vector<std::string> concurrent(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        HttpClient client;
        if (!client.Connect("127.0.0.1", server->port()).ok()) return;
        auto response =
            client.Post("/v1/sample", SampleBody(1000 + i, 5 + i));
        if (response.ok() && response->status == 200) {
          concurrent[i] = response->body;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (int i = 0; i < kClients; ++i) {
      EXPECT_EQ(concurrent[i], reference[i])
          << "round " << round << " client " << i;
    }
  }
}

TEST_F(ServeDeterminismTest, DistinctSeedsDiffer) {
  auto server = StartServer(/*max_batch=*/8);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  auto a = client.Post("/v1/sample", SampleBody(1, 10));
  auto b = client.Post("/v1/sample", SampleBody(2, 10));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->body, b->body);
}

TEST_F(ServeDeterminismTest, UnseededRequestsVary) {
  // Without a seed, consecutive requests draw from distinct counter
  // streams and must not repeat.
  auto server = StartServer(/*max_batch=*/8);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  auto a = client.Post("/v1/sample", "{\"model\": \"alpha\", \"n\": 10}");
  auto b = client.Post("/v1/sample", "{\"model\": \"alpha\", \"n\": 10}");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->status, 200);
  ASSERT_EQ(b->status, 200);
  EXPECT_NE(a->body, b->body);
}

TEST_F(ServeDeterminismTest, PlannedAndReferenceDecodeServeIdenticalBytes) {
  // The compiled infer::DecoderPlan is contractually bit-identical to the
  // reference nn path (docs/inference.md), so a seeded request must get
  // the exact same bytes from a --no-planned-decode server. The toggle is
  // process-global, so the two configurations run strictly one after the
  // other.
  const std::vector<std::pair<std::uint64_t, int>> requests = {
      {42, 10}, {7, 1}, {1234567, 33}};
  std::vector<std::string> planned_bodies;
  {
    auto planned = StartServer(/*max_batch=*/8, /*planned_decode=*/true);
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", planned->port()).ok());
    for (const auto& [seed, n] : requests) {
      auto response = client.Post("/v1/sample", SampleBody(seed, n));
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->status, 200);
      planned_bodies.push_back(response->body);
    }
  }
  {
    auto reference = StartServer(/*max_batch=*/8, /*planned_decode=*/false);
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", reference->port()).ok());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      auto response = client.Post(
          "/v1/sample", SampleBody(requests[i].first, requests[i].second));
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->status, 200);
      EXPECT_EQ(response->body, planned_bodies[i])
          << "seed " << requests[i].first;
    }
  }
  // Init(planned_decode=false) flipped the process-global switch; put it
  // back for the rest of the binary.
  infer::SetPlannedDecodeEnabled(true);
}

TEST_F(ServeDeterminismTest, GoldenDecodeFixtureMatchesBothRuntimes) {
  // The checked-in fixture pins fixed-seed synthesis bytes; both decode
  // runtimes must reproduce it exactly.
  const std::string path =
      std::string(P3GM_GOLDEN_DIR) + "/decode_small.golden";
  const audit::GoldenCompareResult planned = audit::CompareGoldenDecode(path);
  EXPECT_TRUE(planned.ok) << planned.message;

  infer::SetPlannedDecodeEnabled(false);
  const audit::GoldenCompareResult reference =
      audit::CompareGoldenDecode(path);
  infer::SetPlannedDecodeEnabled(true);
  EXPECT_TRUE(reference.ok) << reference.message;
}

}  // namespace
}  // namespace serve
}  // namespace p3gm
