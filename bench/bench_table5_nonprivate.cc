// Table V reproduction: AUROC/AUPRC on the Kaggle-Credit-like dataset for
// VAE (non-private), PGM (non-private) and P3GM at (1, 1e-5)-DP, across
// the four downstream classifiers. Paper claim: PGM has expression power
// similar to VAE, and P3GM's scores do not collapse despite the DP noise.

#include <vector>

#include "bench_common.h"
#include "util/csv.h"

using namespace p3gm;        // NOLINT(build/namespaces)
using namespace p3gm::bench;  // NOLINT(build/namespaces)

int main() {
  PrintTitle("Table V: non-private comparison on Kaggle-Credit-like data");
  BenchRun total("table5_nonprivate");

  data::Dataset credit = BenchCredit();
  auto split = data::StratifiedSplit(credit, 0.25, 11);
  P3GM_CHECK(split.ok());
  std::printf("dataset: n=%zu d=%zu positives=%.2f%% (paper: 284807 x 29, "
              "0.2%%)\n\n",
              credit.size(), credit.dim(), 100.0 * credit.PositiveRate());

  std::vector<std::pair<std::string, eval::ProtocolResult>> rows;

  {
    // Same training budget as PGM/P3GM for a fair comparison.
    Section section("credit/vae");
    core::VaeOptions opt;
    opt.hidden = 200;
    opt.latent_dim = 10;
    opt.epochs = SmokeMode() ? 2 : 40;
    opt.batch_size = 100;
    core::VaeSynthesizer vae(opt);
    rows.emplace_back("VAE", RunProtocol(&vae, *split, /*fast=*/false));
  }
  {
    Section section("credit/pgm");
    core::PgmSynthesizer pgm(CreditPgmOptions());
    rows.emplace_back("PGM", RunProtocol(&pgm, *split, /*fast=*/false));
  }
  {
    Section section("credit/p3gm");
    core::PgmOptions opt =
        MakePrivate(CreditPgmOptions(), split->train.size());
    core::PgmSynthesizer p3gm(opt);
    rows.emplace_back("P3GM", RunProtocol(&p3gm, *split, /*fast=*/false));
    std::printf("P3GM calibrated sigma_s=%.3f -> epsilon=%.4f at delta=%g\n\n",
                opt.sgd_sigma, p3gm.ComputeEpsilon(kDelta).epsilon, kDelta);
  }

  // Paper layout: one row per classifier, AUROC and AUPRC blocks.
  util::CsvWriter csv("table5_credit.csv");
  csv.WriteHeader({"classifier", "model", "auroc", "auprc"});
  std::printf("%-20s", "classifier");
  for (const auto& [name, unused] : rows) {
    (void)unused;
    std::printf(" %10s", (name + " ROC").c_str());
  }
  for (const auto& [name, unused] : rows) {
    (void)unused;
    std::printf(" %10s", (name + " PRC").c_str());
  }
  std::printf("\n");
  const std::size_t n_classifiers = rows[0].second.per_classifier.size();
  for (std::size_t c = 0; c < n_classifiers; ++c) {
    std::printf("%-20s",
                rows[0].second.per_classifier[c].classifier.c_str());
    for (const auto& [name, res] : rows) {
      std::printf(" %10.4f", res.per_classifier[c].auroc);
      csv.WriteRow({res.per_classifier[c].classifier, name,
                    util::FormatDouble(res.per_classifier[c].auroc),
                    util::FormatDouble(res.per_classifier[c].auprc)});
    }
    for (const auto& [name, res] : rows) {
      (void)name;
      std::printf(" %10.4f", res.per_classifier[c].auprc);
    }
    std::printf("\n");
  }
  std::printf("%-20s", "mean");
  for (const auto& [name, res] : rows) {
    (void)name;
    std::printf(" %10.4f", res.mean_auroc);
  }
  for (const auto& [name, res] : rows) {
    (void)name;
    std::printf(" %10.4f", res.mean_auprc);
  }
  std::printf("\n\n");
  std::printf("paper shape check: PGM ~ VAE, P3GM within a few points of "
              "both.\n");
  total.AppendRunInfo(&csv);
  std::printf("[table5 done in %.1fs; CSV: table5_credit.csv]\n",
              total.ElapsedSeconds());
  return 0;
}
