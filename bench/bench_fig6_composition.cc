// Fig. 6 reproduction: total epsilon of the P3GM composition as a
// function of the DP-SGD noise multiplier sigma_s, comparing the paper's
// RDP composition (Theorem 4) against the zCDP + moments-accountant
// baseline. Paper claim: the RDP curve sits strictly below the baseline
// across the full sigma range.

#include <vector>

#include "bench_common.h"
#include "dp/accountant.h"
#include "util/csv.h"

using namespace p3gm;        // NOLINT(build/namespaces)
using namespace p3gm::bench;  // NOLINT(build/namespaces)

int main() {
  PrintTitle("Fig. 6: privacy composition, RDP vs zCDP+MA baseline");
  BenchRun total("fig6_composition");

  // Accounting parameters of a typical MNIST-scale run (Table IV shape).
  dp::P3gmPrivacyParams params;
  params.pca_epsilon = 0.1;
  params.em_sigma = 100.0;
  params.em_iters = 20;
  params.mog_components = 3;
  params.sgd_sampling_rate = 240.0 / 63000.0;
  params.sgd_steps = 10 * (63000 / 240);

  util::CsvWriter csv("fig6_composition.csv");
  csv.WriteHeader({"sigma_s", "epsilon_rdp", "epsilon_zcdp_ma"});
  std::printf("%10s %14s %14s %8s\n", "sigma_s", "eps (RDP)",
              "eps (zCDP+MA)", "ratio");

  std::size_t violations = 0;
  Section section("sigma_sweep");
  for (double sigma = 1.0; sigma <= 16.0; sigma *= 1.3) {
    params.sgd_sigma = sigma;
    const double eps_rdp =
        dp::ComputeP3gmEpsilonRdp(params, kDelta).epsilon;
    const double eps_base = dp::ComputeP3gmEpsilonBaseline(params, kDelta);
    std::printf("%10.3f %14.4f %14.4f %8.3f\n", sigma, eps_rdp, eps_base,
                eps_base / eps_rdp);
    csv.WriteRow({util::FormatDouble(sigma, 3),
                  util::FormatDouble(eps_rdp),
                  util::FormatDouble(eps_base)});
    if (eps_rdp >= eps_base) ++violations;
  }

  section.Stop();
  std::printf("\npaper shape check: RDP < zCDP+MA everywhere "
              "(violations: %zu).\n",
              violations);
  total.AppendRunInfo(&csv);
  std::printf("[fig6 done in %.1fs; CSV: fig6_composition.csv]\n",
              total.ElapsedSeconds());
  return violations == 0 ? 0 : 1;
}
