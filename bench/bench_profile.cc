// Sampling-profiler overhead on the serving hot path: batched decode
// throughput with the SIGPROF sampler off vs armed at the default rate
// (99 Hz, the /v1/profile default). The contract printed in
// docs/observability.md — profiling a live daemon is safe — is enforced
// here as a hard gate: the sampled median must stay within 2% of the
// unsampled median, or the bench fails.
//
// Measurement protocol: baseline and sampled windows alternate
// (baseline, sampled, baseline, ...) so machine drift on a shared host
// hits both sides alike, and each window is calibrated to ~10+ timer
// ticks so every sampled window actually pays for SIGPROF delivery.
// Windows are measured in *thread CPU time*, not wall time: the
// sampler's entire cost (kernel signal delivery + handler + stack
// capture) is CPU work charged to the interrupted thread, while wall
// time on a shared 1-core host adds preemption noise far larger than
// the effect being gated. Profiler Start/Stop (which symbolizes and is
// deliberately expensive) sits outside the timed windows: the gate
// measures steady-state sampling cost, which is what a daemon pays
// mid-profile.
//
// Emits BENCH_profile.json for the tools/bench_compare regression gate.

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/release.h"
#include "linalg/matrix.h"
#include "obs/profile/profiler.h"
#include "stats/gmm.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace bench {
namespace {

// An MNIST-scale decoder (latent 64 -> hidden 512 -> 786 outputs), the
// same shape bench_decode times; weights are fixed pseudo-random so the
// run is reproducible without training.
core::ReleasePackage MakeProfilePackage() {
  const std::size_t dl = 64, h = 512, d = 786;
  linalg::Matrix w1(dl, h), b1(1, h), w2(h, d), b2(1, d);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 2000) / 1000.0 - 1.0;
  };
  for (std::size_t i = 0; i < w1.size(); ++i) w1.data()[i] = 0.1 * next();
  for (std::size_t i = 0; i < b1.size(); ++i) b1.data()[i] = 0.05 * next();
  for (std::size_t i = 0; i < w2.size(); ++i) w2.data()[i] = 0.1 * next();
  for (std::size_t i = 0; i < b2.size(); ++i) b2.data()[i] = 0.05 * next();
  linalg::Matrix means(2, dl), variances(2, dl, 0.8);
  for (std::size_t j = 0; j < dl; ++j) {
    means(0, j) = -0.8;
    means(1, j) = 0.8;
  }
  auto prior = stats::GaussianMixture::Create({0.5, 0.5}, means, variances);
  P3GM_CHECK(prior.ok());
  auto pkg = core::ReleasePackage::FromParts(
      "bench_profile", /*num_classes=*/2, core::DecoderType::kGaussian,
      std::move(*prior), std::move(w1), std::move(b1), std::move(w2),
      std::move(b2));
  P3GM_CHECK(pkg.ok());
  return std::move(*pkg);
}

double Median(std::vector<double> v) {
  P3GM_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// CPU seconds consumed by the calling thread (includes signal-handler
// execution, excludes time spent preempted).
double ThreadCpuSeconds() {
  struct timespec ts;
  P3GM_CHECK(::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace
}  // namespace bench
}  // namespace p3gm

int main() {
  using namespace p3gm;  // NOLINT(build/namespaces)

  // Thread-CPU-time windows only see work on the driver thread; pin the
  // decode there so the measurement covers all of it on any host.
  util::SetNumThreads(1);

  bench::BenchRun run("profile");
  bench::PrintTitle(
      "sampling-profiler overhead on batched decode (99 Hz default)");

  constexpr int kHz = 99;  // /v1/profile default.
  const std::size_t kBatch = 256;
  const int kWindowsPerMode = bench::SmokeMode() ? 9 : 15;
  const double kTargetWindowSeconds = bench::SmokeMode() ? 0.15 : 0.25;

  const core::ReleasePackage pkg = bench::MakeProfilePackage();
  util::Rng z_rng(20260808);
  const linalg::Matrix z = pkg.SampleLatent(kBatch, &z_rng);
  linalg::Matrix out;

  auto decode = [&pkg, &z, &out] {
    const util::Status status = pkg.DecodeLatentInto(z, &out);
    P3GM_CHECK_MSG(status.ok(), status.ToString().c_str());
  };

  // Calibrate iterations so a window spans 10+ ticks at 99 Hz: short
  // windows would make "did a tick land here" the dominant noise term.
  decode();  // Warm caches / plan arena.
  const double calibrate_start = bench::ThreadCpuSeconds();
  decode();
  const double per_batch =
      std::max(bench::ThreadCpuSeconds() - calibrate_start, 1e-7);
  const std::size_t iters = std::max<std::size_t>(
      4, static_cast<std::size_t>(kTargetWindowSeconds / per_batch));

  obs::profile::CpuProfiler& profiler = obs::profile::CpuProfiler::Global();
  std::vector<double> baseline_windows, sampled_windows;
  std::uint64_t total_samples = 0;
  double overhead = 0.0;
  // One re-measurement is allowed before the gate fails: the gate
  // targets a sub-1% effect, and shared-host noise occasionally fakes a
  // multi-percent swing in either direction for a whole measurement. A
  // real regression breaches both attempts.
  for (int attempt = 0; attempt < 2; ++attempt) {
    baseline_windows.clear();
    sampled_windows.clear();
    for (int w = 0; w < kWindowsPerMode; ++w) {
      {
        const double start = bench::ThreadCpuSeconds();
        for (std::size_t i = 0; i < iters; ++i) decode();
        const double seconds = bench::ThreadCpuSeconds() - start;
        baseline_windows.push_back(seconds);
        run.suite().RecordSample("profile/decode_baseline", seconds);
      }
      {
        obs::profile::CpuProfileOptions options;
        options.hz = kHz;
        const util::Status status = profiler.Start(options);
        P3GM_CHECK_MSG(status.ok(), status.ToString().c_str());
        const double start = bench::ThreadCpuSeconds();
        for (std::size_t i = 0; i < iters; ++i) decode();
        const double seconds = bench::ThreadCpuSeconds() - start;
        auto profile = profiler.Stop();  // Symbolization outside the timer.
        P3GM_CHECK(profile.ok());
        total_samples += profile->samples;
        sampled_windows.push_back(seconds);
        run.suite().RecordSample("profile/decode_sampled", seconds);
      }
    }
    // Each sampled window is compared against its adjacent baseline
    // window (they ran back to back), then the median ratio is taken:
    // slow host phases shift a pair together and cancel in its ratio,
    // where a median-of-each-side comparison would keep the shift.
    std::vector<double> pair_ratios;
    for (int w = 0; w < kWindowsPerMode; ++w) {
      pair_ratios.push_back(sampled_windows[w] / baseline_windows[w]);
    }
    overhead = bench::Median(pair_ratios) - 1.0;
    if (overhead < 0.02) break;
    std::printf("measured %+.3f%% on attempt %d; re-measuring\n",
                overhead * 100.0, attempt + 1);
  }
  const double baseline = bench::Median(baseline_windows);
  const double sampled = bench::Median(sampled_windows);
  const double rows_base = static_cast<double>(iters * kBatch) / baseline;
  const double rows_sampled = static_cast<double>(iters * kBatch) / sampled;

  std::printf("%-24s %14s %14s\n", "mode", "cpu s/window", "rows/s");
  std::printf("%-24s %14.6f %14.0f\n", "baseline", baseline, rows_base);
  std::printf("%-24s %14.6f %14.0f\n", "sampled@99hz", sampled,
              rows_sampled);
  bench::PrintRule();
  std::printf(
      "sampling overhead: %+.3f%% (%d windows x %zu batches of %zu, "
      "%llu samples captured, %s walker)\n",
      overhead * 100.0, kWindowsPerMode, iters, kBatch,
      static_cast<unsigned long long>(total_samples),
      obs::profile::UsingFramePointerWalk() ? "frame-pointer"
                                            : "backtrace");

  util::CsvWriter csv("bench_profile.csv");
  csv.WriteRow({"mode", "window_seconds", "rows_per_s"});
  csv.WriteRow({"baseline", util::FormatDouble(baseline, 6),
                util::FormatDouble(rows_base, 1)});
  csv.WriteRow({"sampled_99hz", util::FormatDouble(sampled, 6),
                util::FormatDouble(rows_sampled, 1)});
  csv.WriteRow({"overhead_percent", util::FormatDouble(overhead * 100.0, 3),
                ""});
  run.AppendRunInfo(&csv);

  // The gate. Sampling must be cheap enough to leave on against a
  // production daemon; 2% of batched decode is the published budget.
  P3GM_CHECK_MSG(total_samples > 0,
                 "sampler captured nothing during the sampled windows");
  P3GM_CHECK_MSG(overhead < 0.02,
                 "sampling overhead exceeded 2% of batched decode");
  return 0;
}
