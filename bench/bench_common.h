#ifndef P3GM_BENCH_BENCH_COMMON_H_
#define P3GM_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the table/figure reproduction binaries. Every
// bench prints the paper's rows at the scaled-down configuration recorded
// here and writes a CSV next to the binary (see EXPERIMENTS.md for the
// paper-vs-measured record).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pgm.h"
#include "core/synthesizer.h"
#include "core/vae.h"
#include "data/dataset.h"
#include "data/images.h"
#include "data/synthetic.h"
#include "eval/protocol.h"
#include "obs/bench/harness.h"
#include "obs/ledger.h"
#include "obs/observability.h"
#include "obs/perf/alloc.h"
#include "obs/perf/counters.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace p3gm {
namespace bench {

/// Privacy level used throughout the paper's main tables.
constexpr double kDelta = 1e-5;
constexpr double kEpsilon = 1.0;

/// CI smoke mode (P3GM_BENCH_SMOKE=1): every dataset helper shrinks to a
/// few hundred rows and every options helper clamps the epoch budget so
/// each bench binary finishes in seconds, exercising the full pipeline
/// without reproducing the paper numbers. The `bench-smoke` ctest label
/// runs every bench this way.
inline bool SmokeMode() {
  const char* env = std::getenv("P3GM_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

/// Bench-scale dataset sizes (paper sizes in Table III are 1-2 orders of
/// magnitude larger; see DESIGN.md §5 for the scaling policy).
inline data::Dataset BenchCredit() {
  // Real: 284 807 rows, 0.2 % positive. Scaled: 16 000 rows at 1 %
  // positive so splits retain estimable positives (smoke: 2 000 rows,
  // still ~20 positives).
  return data::MakeCreditLike(SmokeMode() ? 2000 : 16000, 20260707, 0.01);
}
inline data::Dataset BenchAdult() {
  return data::MakeAdultLike(SmokeMode() ? 1000 : 8000, 711);
}
inline data::Dataset BenchIsolet() {
  return data::MakeIsoletLike(SmokeMode() ? 600 : 4000, 712);
}
inline data::Dataset BenchEsr() {
  return data::MakeEsrLike(SmokeMode() ? 800 : 5000, 713);
}
// DP-SGD image training is signal-starved below ~10^4 examples (the
// paper's own ISOLET discussion); the image benches therefore run at the
// largest n the single-core budget allows.
inline data::Dataset BenchMnist(std::size_t n = 14000) {
  return data::MakeMnistLike(SmokeMode() ? std::min<std::size_t>(n, 1000)
                                         : n,
                             714);
}
inline data::Dataset BenchFashion(std::size_t n = 14000) {
  return data::MakeFashionLike(SmokeMode() ? std::min<std::size_t>(n, 1000)
                                           : n,
                               715);
}

/// Caps the training schedule in smoke mode; identity otherwise. Every
/// options factory routes through this so `bench-smoke` runs the same
/// pipeline shape in a fraction of the steps.
inline core::PgmOptions ClampForSmoke(core::PgmOptions opt) {
  if (SmokeMode()) {
    opt.epochs = std::min<std::size_t>(opt.epochs, 2);
    opt.batch_size = std::min<std::size_t>(opt.batch_size, 100);
  }
  return opt;
}

/// Per-dataset P3GM/PGM hyper-parameters following Table IV's shape
/// (learning rate 1e-3 everywhere; epochs/batch scaled to the bench
/// sizes; Credit trains without PCA as in the paper).
inline core::PgmOptions CreditPgmOptions() {
  core::PgmOptions opt;
  opt.hidden = 200;
  opt.use_pca = false;  // Paper: no dimensionality reduction on Credit.
  opt.mog_components = 3;
  opt.epochs = 40;
  opt.batch_size = 100;
  return ClampForSmoke(opt);
}
inline core::PgmOptions AdultPgmOptions() {
  core::PgmOptions opt;
  opt.hidden = 200;
  opt.latent_dim = 10;
  opt.mog_components = 3;
  opt.epochs = 40;
  opt.batch_size = 100;
  return ClampForSmoke(opt);
}
inline core::PgmOptions IsoletPgmOptions() {
  core::PgmOptions opt;
  opt.hidden = 100;
  opt.latent_dim = 10;
  opt.mog_components = 3;
  opt.epochs = 25;
  opt.batch_size = 100;
  return ClampForSmoke(opt);
}
inline core::PgmOptions EsrPgmOptions() {
  core::PgmOptions opt;
  opt.hidden = 150;
  opt.latent_dim = 10;
  opt.mog_components = 3;
  opt.epochs = 30;
  opt.batch_size = 100;
  return ClampForSmoke(opt);
}
inline core::PgmOptions ImagePgmOptions() {
  core::PgmOptions opt;
  opt.hidden = 100;
  opt.latent_dim = 10;
  opt.mog_components = 5;
  opt.epochs = 10;
  opt.batch_size = 240;  // Paper's Table IV MNIST lot size.
  return ClampForSmoke(opt);
}

/// Calibrates the DP-SGD noise of `opt` for (epsilon, kDelta)-DP on n
/// examples and flips the private switches on. Aborts on calibration
/// failure (a bench configuration bug, not a runtime condition).
inline core::PgmOptions MakePrivate(core::PgmOptions opt, std::size_t n,
                                    double epsilon = kEpsilon) {
  opt.differentially_private = true;
  auto sigma = core::Pgm::CalibrateSigma(opt, n, epsilon, kDelta);
  P3GM_CHECK_MSG(sigma.ok(), sigma.status().ToString().c_str());
  opt.sgd_sigma = *sigma;
  return opt;
}

/// Runs the paper's protocol: fit `synth` on train, generate a same-size
/// labeled dataset with the train label ratio, evaluate the classifier
/// roster on the real test split.
inline eval::ProtocolResult RunProtocol(core::Synthesizer* synth,
                                        const data::Split& split,
                                        bool fast = true,
                                        std::uint64_t seed = 3) {
  util::Status st = synth->Fit(split.train);
  P3GM_CHECK_MSG(st.ok(), st.ToString().c_str());
  util::Rng rng(seed);
  auto gen = core::GenerateWithLabelRatio(synth, split.train.size(),
                                          split.train, &rng);
  P3GM_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  auto res = eval::EvaluateSyntheticData(*gen, split.test, fast);
  P3GM_CHECK_MSG(res.ok(), res.status().ToString().c_str());
  return std::move(res).ValueOrDie();
}

/// Observed bench run: one instance per bench main(). Turns the
/// observability subsystem on, times the run, owns the statistical
/// bench suite the binary's Sections feed, and owns the provenance row
/// every bench CSV carries, so the schema is defined in exactly one
/// place. On destruction (end of main) it exports the run's artifacts
/// next to the CSVs:
///
///   BENCH_<name>.json                        — harness trajectory file
///   <name>_metrics.json / <name>_metrics.csv — registry snapshot
///   <name>_trace.json                        — chrome://tracing spans
///   <name>_ledger.json / <name>_ledger.csv   — privacy-budget ledger
class BenchRun {
 public:
  explicit BenchRun(std::string name)
      : name_(std::move(name)), suite_(name_) {
    obs::SetEnabled(true);
    obs::PrivacyLedger::Global().SetDelta(kDelta);
    suite_.runinfo().threads = static_cast<int>(util::NumThreads());
    current_ = this;
  }

  /// The run owning this process's Sections; null outside a BenchRun's
  /// lifetime (Sections then only time, without recording).
  static BenchRun* Current() { return current_; }

  obs::bench::BenchSuite& suite() { return suite_; }

  double ElapsedSeconds() const { return stopwatch_.ElapsedSeconds(); }

  /// Appends the trailing provenance row recording the total wall time
  /// and the thread count, so archived CSVs are comparable across
  /// machines and P3GM_NUM_THREADS settings. The sentinel "_runinfo" in
  /// the first column keeps the row trivially filterable by downstream
  /// plotting scripts (the BENCH_*.json carries the same sentinel as its
  /// "_runinfo" object). The same values are published to the registry
  /// (bench.wall_seconds / bench.threads), putting the CSV row and the
  /// metrics snapshot in agreement.
  void AppendRunInfo(util::CsvWriter* csv) const {
    const double wall_seconds = stopwatch_.ElapsedSeconds();
    obs::Registry& registry = obs::Registry::Global();
    registry.gauge("bench.wall_seconds")->Set(wall_seconds);
    registry.gauge("bench.threads")
        ->Set(static_cast<double>(util::NumThreads()));
    csv->WriteRow({"_runinfo",
                   "wall_seconds=" + util::FormatDouble(wall_seconds, 6),
                   "threads=" + std::to_string(util::NumThreads())});
  }

  ~BenchRun() {
    current_ = nullptr;
    const double wall_seconds = stopwatch_.ElapsedSeconds();
    suite_.runinfo().wall_seconds = wall_seconds;
    // Every bench gets at least the end-to-end sample, so BENCH files
    // exist (and are comparable) even for binaries with no Sections yet.
    suite_.RecordSample("total", wall_seconds);
    const std::string bench_path = "BENCH_" + name_ + ".json";
    suite_.WriteJson(bench_path);
    std::printf("bench trajectory: %s\n", bench_path.c_str());
    if (!obs::Enabled()) return;
    const obs::Snapshot snapshot = obs::Registry::Global().TakeSnapshot();
    snapshot.WriteJson(name_ + "_metrics.json");
    snapshot.WriteCsv(name_ + "_metrics.csv");
    obs::TraceRecorder::Global().WriteChromeJson(name_ + "_trace.json");
    const obs::PrivacyLedger& ledger = obs::PrivacyLedger::Global();
    if (ledger.size() > 0) {
      ledger.WriteJson(name_ + "_ledger.json");
      ledger.WriteCsv(name_ + "_ledger.csv");
    }
    std::printf("telemetry: %s_metrics.{json,csv} %s_trace.json%s\n",
                name_.c_str(), name_.c_str(),
                ledger.size() > 0 ? " + ledger" : "");
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

 private:
  static inline BenchRun* current_ = nullptr;

  std::string name_;
  util::Stopwatch stopwatch_;
  obs::bench::BenchSuite suite_;
};

/// Timed bench section: measures wall time, perf counters and (when
/// compiled in) allocation activity for one region and records the
/// sample into the active BenchRun's suite under `name`. Replaces the
/// ad-hoc util::Stopwatch blocks the benches used to carry:
///
///   bench::Section s("credit/p3gm");
///   ... train + evaluate ...
///   std::printf("(%.1fs)\n", s.Stop());   // or let the dtor record
///
/// Stop() is idempotent and returns the section's wall seconds; the
/// destructor stops implicitly. Section names are free-form but should
/// stay stable across commits — they are the keys bench_compare joins
/// on.
class Section {
 public:
  explicit Section(std::string name) : name_(std::move(name)) {
    counters_.Start();
  }

  double Stop() {
    if (stopped_) return seconds_;
    stopped_ = true;
    const obs::perf::PerfSample sample = counters_.Stop();
    const obs::perf::AllocStats alloc = alloc_scope_.Delta();
    seconds_ = sample.wall_seconds;
    if (BenchRun* run = BenchRun::Current()) {
      run->suite().RecordSample(name_, seconds_, &sample, &alloc);
    }
    return seconds_;
  }

  ~Section() { Stop(); }

  Section(const Section&) = delete;
  Section& operator=(const Section&) = delete;

 private:
  std::string name_;
  obs::perf::AllocScope alloc_scope_;
  obs::perf::PerfCounters counters_;
  bool stopped_ = false;
  double seconds_ = 0.0;
};

inline void PrintRule() {
  std::printf(
      "--------------------------------------------------------------\n");
}

inline void PrintTitle(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace bench
}  // namespace p3gm

#endif  // P3GM_BENCH_BENCH_COMMON_H_
