// Fig. 2 reproduction: sample grids from the MNIST-like dataset for (a)
// original data, (b) VAE, (c) DP-VAE, (d) DP-GM and (e) P3GM, with (c),
// (d), (e) at (1, 1e-5)-DP. Writes one PGM image grid per model and
// prints a small ASCII preview. Paper claim: DP-VAE is noisy, DP-GM is
// clean but mode-collapsed, P3GM is both clean and diverse.

#include <cmath>

#include "baselines/dp_gm.h"
#include "bench_common.h"
#include "data/transforms.h"
#include "util/csv.h"

using namespace p3gm;        // NOLINT(build/namespaces)
using namespace p3gm::bench;  // NOLINT(build/namespaces)

namespace {

constexpr std::size_t kGrid = 6;  // 6x6 sample grids.

// Mean pairwise L2 distance between sample rows — the diversity proxy we
// report alongside the pictures (mode collapse shows up as a small
// value).
double Diversity(const linalg::Matrix& samples) {
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    for (std::size_t j = i + 1; j < samples.rows(); ++j) {
      double d2 = 0.0;
      for (std::size_t k = 0; k < samples.cols(); ++k) {
        const double diff = samples(i, k) - samples(j, k);
        d2 += diff * diff;
      }
      total += std::sqrt(d2);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

void SaveAndReport(const std::string& name, const linalg::Matrix& samples,
                   util::CsvWriter* csv) {
  const std::string path = "fig2_" + name + ".pgm";
  auto st = data::SaveImageGridPgm(samples, kGrid, path);
  P3GM_CHECK_MSG(st.ok(), st.ToString().c_str());
  const double div = Diversity(samples);
  std::printf("%-8s diversity=%.3f -> %s\n", name.c_str(), div,
              path.c_str());
  csv->WriteRow({name, util::FormatDouble(div)});
  // ASCII preview of the first sample.
  std::printf("%s\n", data::AsciiImage(samples.row_data(0)).c_str());
}

linalg::Matrix GenerateImages(const std::string& slug,
                              core::Synthesizer* synth,
                              const data::Dataset& train, std::size_t n) {
  Section section(slug);
  util::Status st = synth->Fit(train);
  P3GM_CHECK_MSG(st.ok(), st.ToString().c_str());
  util::Rng rng(5);
  auto gen = synth->Generate(n, &rng);
  P3GM_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  return gen->features;
}

std::size_t SmokeEpochs(std::size_t epochs) {
  return SmokeMode() ? std::min<std::size_t>(epochs, 1) : epochs;
}

}  // namespace

int main() {
  PrintTitle("Fig. 2: sampled images, models at (1,1e-5)-DP");
  BenchRun total("fig2_samples");
  util::CsvWriter csv("fig2_diversity.csv");
  csv.WriteHeader({"model", "mean_pairwise_l2"});

  data::Dataset mnist = BenchMnist(18000);
  const std::size_t n_samples = kGrid * kGrid;
  const std::size_t n = mnist.size();

  // (a) Original.
  SaveAndReport("original", mnist.features.SelectRows([&] {
    std::vector<std::size_t> idx(n_samples);
    for (std::size_t i = 0; i < n_samples; ++i) idx[i] = i;
    return idx;
  }()),
                &csv);

  // (b) VAE (non-private).
  {
    core::VaeOptions opt;
    opt.hidden = 100;
    opt.latent_dim = 10;
    opt.epochs = SmokeEpochs(10);
    opt.batch_size = 240;
    core::VaeSynthesizer vae(opt);
    SaveAndReport("vae", GenerateImages("vae", &vae, mnist, n_samples),
                  &csv);
  }
  // (c) DP-VAE.
  {
    core::VaeOptions opt;
    opt.hidden = 100;
    opt.latent_dim = 10;
    opt.epochs = SmokeEpochs(10);
    opt.batch_size = 240;
    opt.differentially_private = true;
    dp::P3gmPrivacyParams pp;
    pp.pca_epsilon = 0.0;
    pp.em_iters = 0;
    pp.sgd_sampling_rate =
        static_cast<double>(opt.batch_size) / static_cast<double>(n);
    pp.sgd_steps = opt.epochs * (n / opt.batch_size);
    auto sigma = dp::CalibrateSgdSigma(pp, kEpsilon, kDelta);
    P3GM_CHECK(sigma.ok());
    opt.sgd_sigma = *sigma;
    core::VaeSynthesizer dpvae(opt);
    SaveAndReport("dpvae",
                  GenerateImages("dpvae", &dpvae, mnist, n_samples), &csv);
  }
  // (d) DP-GM.
  {
    baselines::DpGmOptions opt;
    opt.num_clusters = 10;
    opt.vae.hidden = 100;
    opt.vae.latent_dim = 10;
    opt.vae.epochs = SmokeEpochs(8);
    opt.vae.batch_size = 30;
    auto sigma =
        baselines::DpGmSynthesizer::CalibrateSigma(opt, n, kEpsilon, kDelta);
    P3GM_CHECK(sigma.ok());
    opt.vae.sgd_sigma = *sigma;
    baselines::DpGmSynthesizer dpgm(opt);
    SaveAndReport("dpgm", GenerateImages("dpgm", &dpgm, mnist, n_samples),
                  &csv);
  }
  // (e) P3GM.
  {
    core::PgmOptions opt = MakePrivate(ImagePgmOptions(), n);
    core::PgmSynthesizer p3gm(opt);
    SaveAndReport("p3gm", GenerateImages("p3gm", &p3gm, mnist, n_samples),
                  &csv);
  }

  std::printf(
      "paper shape check: diversity(p3gm) > diversity(dpgm); p3gm and vae "
      "comparable.\n");
  total.AppendRunInfo(&csv);
  std::printf("[fig2 done in %.1fs; grids: fig2_*.pgm]\n",
              total.ElapsedSeconds());
  return 0;
}
