// Quality-monitoring overhead: what the serving path pays to fold every
// decoded batch into the streaming sketches (obs/quality/monitor.h),
// measured against the batched decode it rides on. Three costs:
//
//  1. The decode itself (batch 256 through the MNIST-scale decoder) —
//     the denominator of the overhead ratio.
//  2. ObserveDecoded at the production stride: the per-batch cost
//     `p3gm serve` actually adds. The acceptance bar — sketch ingest
//     under 3% of batched decode throughput — is asserted here, so a
//     sketch regression fails the bench run (and CI's bench-smoke tier)
//     rather than quietly taxing every deployment.
//  3. ObserveDecoded at stride 1 (every row) and a scrape-style Score()
//     merge, for the raw per-row fold cost and the scrape-side cost.
//
// Emits BENCH_quality.json for the tools/bench_compare regression gate.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/release.h"
#include "linalg/matrix.h"
#include "obs/quality/fingerprint.h"
#include "obs/quality/monitor.h"
#include "stats/gmm.h"
#include "util/csv.h"
#include "util/rng.h"

namespace p3gm {
namespace bench {
namespace {

// The same MNIST-scale decoder bench_decode times: latent 64 -> hidden
// 512 -> 786 outputs (784 pixels + a 2-class one-hot block). Weights
// are fixed pseudo-random so the run is reproducible without training.
core::ReleasePackage MakeQualityPackage() {
  const std::size_t dl = 64, h = 512, d = 786;
  linalg::Matrix w1(dl, h), b1(1, h), w2(h, d), b2(1, d);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 2000) / 1000.0 - 1.0;
  };
  for (std::size_t i = 0; i < w1.size(); ++i) w1.data()[i] = 0.1 * next();
  for (std::size_t i = 0; i < b1.size(); ++i) b1.data()[i] = 0.05 * next();
  for (std::size_t i = 0; i < w2.size(); ++i) w2.data()[i] = 0.1 * next();
  for (std::size_t i = 0; i < b2.size(); ++i) b2.data()[i] = 0.05 * next();
  linalg::Matrix means(2, dl), variances(2, dl, 0.8);
  for (std::size_t j = 0; j < dl; ++j) {
    means(0, j) = -0.8;
    means(1, j) = 0.8;
  }
  auto prior = stats::GaussianMixture::Create({0.5, 0.5}, means, variances);
  P3GM_CHECK(prior.ok());
  auto pkg = core::ReleasePackage::FromParts(
      "bench_quality", /*num_classes=*/2, core::DecoderType::kGaussian,
      std::move(*prior), std::move(w1), std::move(b1), std::move(w2),
      std::move(b2));
  P3GM_CHECK(pkg.ok());
  return std::move(*pkg);
}

}  // namespace
}  // namespace bench
}  // namespace p3gm

int main() {
  using namespace p3gm;  // NOLINT(build/namespaces)
  using obs::quality::MonitorOptions;
  using obs::quality::QualityMonitor;

  bench::BenchRun run("quality");
  bench::PrintTitle(
      "quality monitoring: sketch ingest vs batched decode throughput");

  const std::size_t kBatch = 256;
  // Rows processed per measured rep — identical for the decode and the
  // observe benches, so the ratio of medians is the per-row overhead.
  const std::size_t kRowsPerRep = bench::SmokeMode() ? 1024 : 8192;
  const std::size_t kFingerprintRows = bench::SmokeMode() ? 512 : 4096;
  const std::size_t kIters = kRowsPerRep / kBatch;

  const core::ReleasePackage pkg = bench::MakeQualityPackage();
  auto fp = core::BuildFingerprint(pkg, kFingerprintRows, /*seed=*/17);
  P3GM_CHECK_MSG(fp.ok(), fp.status().ToString().c_str());
  auto fingerprint =
      std::make_shared<const obs::quality::Fingerprint>(std::move(*fp));

  // One decoded batch, reused by every observe rep: the monitor reads
  // the decode buffer, so folding the same bytes repeatedly is exactly
  // the serving steady state.
  util::Rng z_rng(20260808);
  const linalg::Matrix z = pkg.SampleLatent(kBatch, &z_rng);
  linalg::Matrix decoded;
  {
    const util::Status status = pkg.DecodeLatentInto(z, &decoded);
    P3GM_CHECK_MSG(status.ok(), status.ToString().c_str());
  }

  MonitorOptions production;  // Default stride, what `p3gm serve` runs.
  MonitorOptions every_row;
  every_row.stride = 1;
  QualityMonitor monitor_default(fingerprint, fingerprint->feature_dim(),
                                 fingerprint->num_classes(), production);
  QualityMonitor monitor_s1(fingerprint, fingerprint->feature_dim(),
                            fingerprint->num_classes(), every_row);

  // The scrape-cost monitor is pre-loaded once so Score() merges sketches
  // at their steady-state (post-compaction) sizes.
  QualityMonitor monitor_scrape(fingerprint, fingerprint->feature_dim(),
                                fingerprint->num_classes(), every_row);
  for (std::size_t it = 0; it < kIters; ++it) {
    monitor_scrape.ObserveDecoded(decoded);
  }

  linalg::Matrix out;
  std::vector<obs::bench::BenchSuite::NamedBench> benches;
  benches.push_back({"quality/decode_b256", [&] {
                       for (std::size_t it = 0; it < kIters; ++it) {
                         const util::Status status =
                             pkg.DecodeLatentInto(z, &out);
                         P3GM_CHECK(status.ok());
                       }
                     }});
  benches.push_back({"quality/observe_default_b256", [&] {
                       for (std::size_t it = 0; it < kIters; ++it) {
                         monitor_default.ObserveDecoded(decoded);
                       }
                     }});
  benches.push_back({"quality/observe_stride1_b256", [&] {
                       for (std::size_t it = 0; it < kIters; ++it) {
                         monitor_s1.ObserveDecoded(decoded);
                       }
                     }});
  benches.push_back({"quality/score_scrape", [&] {
                       const obs::quality::DriftReport report =
                           monitor_scrape.Score();
                       P3GM_CHECK(report.has_fingerprint);
                     }});
  run.suite().RunInterleaved(benches);

  auto median_of = [&](const std::string& name) -> double {
    for (const obs::bench::BenchResult& r : run.suite().results()) {
      if (r.name == name) return r.stats.median;
    }
    return 0.0;
  };
  const double decode_s = median_of("quality/decode_b256");
  const double observe_default_s = median_of("quality/observe_default_b256");
  const double observe1_s = median_of("quality/observe_stride1_b256");
  const double score_s = median_of("quality/score_scrape");
  const double rows = static_cast<double>(kIters * kBatch);

  auto per_batch_us = [&](double seconds) {
    return seconds / static_cast<double>(kIters) * 1e6;
  };
  const double overhead =
      decode_s > 0.0 ? observe_default_s / decode_s : 0.0;

  std::printf("%-28s %14s %14s\n", "scenario", "rows/s", "us/batch256");
  util::CsvWriter csv("bench_quality.csv");
  csv.WriteRow({"scenario", "rows_per_s", "us_per_batch"});
  const struct {
    const char* name;
    double seconds;
  } kScenarios[] = {
      {"decode_b256", decode_s},
      {"observe_default_b256", observe_default_s},
      {"observe_stride1_b256", observe1_s},
  };
  for (const auto& s : kScenarios) {
    const double rate = s.seconds > 0.0 ? rows / s.seconds : 0.0;
    std::printf("%-28s %14.0f %14.2f\n", s.name, rate,
                per_batch_us(s.seconds));
    csv.WriteRow({s.name, util::FormatDouble(rate, 1),
                  util::FormatDouble(per_batch_us(s.seconds), 3)});
  }
  std::printf("%-28s %14s %14.2f\n", "score_scrape", "-", score_s * 1e6);
  csv.WriteRow({"score_scrape", "", util::FormatDouble(score_s * 1e6, 3)});
  csv.WriteRow({"observe_over_decode", util::FormatDouble(overhead, 6),
                ""});

  bench::PrintRule();
  std::printf(
      "sketch ingest at stride %zu: %.3f%% of batched decode cost "
      "(bar: < 3%%); monitor footprint %.1f KiB\n",
      production.stride, overhead * 100.0,
      static_cast<double>(monitor_s1.MemoryBytes()) / 1024.0);
  // The acceptance bar from docs/observability.md: monitoring must stay
  // in the noise of the decode it observes.
  P3GM_CHECK_MSG(overhead < 0.03,
                 "quality sketch ingest exceeded 3% of batched decode");
  run.AppendRunInfo(&csv);
  return 0;
}
