// Fig. 5 reproduction: CNN classification accuracy on MNIST-like data as
// the number of retained PCA components d_p varies, P3GM at (1, 1e-5)-DP.
// Paper claim: accuracy is unimodal in d_p — too few components lack
// expressive power, too many break the (DP-)EM fit — with a plateau
// around d_p in [10, 100].

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "eval/cnn_classifier.h"
#include "eval/metrics.h"
#include "util/csv.h"

using namespace p3gm;        // NOLINT(build/namespaces)
using namespace p3gm::bench;  // NOLINT(build/namespaces)

int main() {
  PrintTitle("Fig. 5: P3GM accuracy vs PCA dimensionality d_p (MNIST)");
  BenchRun total("fig5_vary_dp");

  data::Dataset mnist = BenchMnist(12000);
  auto split = data::StratifiedSplit(mnist, 0.1, 11);
  P3GM_CHECK(split.ok());
  const std::size_t n = split->train.size();

  const std::vector<std::size_t> dps =
      SmokeMode() ? std::vector<std::size_t>{2, 10}
                  : std::vector<std::size_t>{2, 5, 10, 50, 150};
  util::CsvWriter csv("fig5_vary_dp.csv");
  csv.WriteHeader({"dp", "accuracy"});
  std::printf("%8s %10s\n", "d_p", "accuracy");

  for (std::size_t dp : dps) {
    Section section("dp_" + std::to_string(dp));
    core::PgmOptions opt = ImagePgmOptions();
    opt.latent_dim = dp;
    opt = MakePrivate(opt, n);
    core::PgmSynthesizer p3gm(opt);
    util::Status st = p3gm.Fit(split->train);
    P3GM_CHECK_MSG(st.ok(), st.ToString().c_str());
    util::Rng rng(3);
    auto gen = core::GenerateWithLabelRatio(&p3gm, std::min<std::size_t>(
                                                       n, 6000),
                                            split->train, &rng);
    P3GM_CHECK(gen.ok());

    eval::CnnClassifier::Options copt;
    copt.conv_channels = 16;
    copt.hidden = 64;
    copt.epochs = 2;
    copt.batch_size = 32;
    eval::CnnClassifier cnn(copt);
    st = cnn.Fit(gen->features, gen->labels);
    P3GM_CHECK_MSG(st.ok(), st.ToString().c_str());
    const double acc =
        eval::Accuracy(cnn.Predict(split->test.features), split->test.labels);
    std::printf("%8zu %10.4f (%.0fs)\n", dp, acc, section.Stop());
    csv.WriteRow({util::FormatDouble(static_cast<double>(dp), 0),
                  util::FormatDouble(acc)});
  }

  std::printf(
      "\npaper shape check: unimodal curve; best accuracy for d_p in the "
      "tens, degrading at both extremes.\n");
  total.AppendRunInfo(&csv);
  std::printf("[fig5 done in %.1fs; CSV: fig5_vary_dp.csv]\n",
              total.ElapsedSeconds());
  return 0;
}
