// Decoder synthesis throughput: the compiled inference runtime
// (infer::DecoderPlan — packed weights, arena buffers, fused SIMD
// kernels; see docs/inference.md) against the reference nn/linalg
// forward pass, across batch sizes. Both paths run through
// ReleasePackage::DecodeLatent with the planned-decode switch flipped,
// so each side pays its true end-to-end cost (the reference path's
// per-layer Matrix allocations included) — exactly what `p3gm serve`
// pays per coalesced batch.
//
// The two runtimes are contractually bit-identical; this bench asserts
// that on every batch size before timing anything, so a kernel
// regression can never hide behind a throughput win.
//
// Emits BENCH_decode.json for the tools/bench_compare regression gate.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/release.h"
#include "infer/kernels.h"
#include "infer/plan.h"
#include "linalg/matrix.h"
#include "stats/gmm.h"
#include "util/csv.h"
#include "util/rng.h"

namespace p3gm {
namespace bench {
namespace {

// An MNIST-scale decoder: latent 64 -> hidden 512 -> 786 outputs (784
// pixels + a 2-class one-hot block), Bernoulli head. Weights are fixed
// pseudo-random so the run is reproducible without training.
core::ReleasePackage MakeDecodePackage() {
  const std::size_t dl = 64, h = 512, d = 786;
  linalg::Matrix w1(dl, h), b1(1, h), w2(h, d), b2(1, d);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 2000) / 1000.0 - 1.0;
  };
  for (std::size_t i = 0; i < w1.size(); ++i) w1.data()[i] = 0.1 * next();
  for (std::size_t i = 0; i < b1.size(); ++i) b1.data()[i] = 0.05 * next();
  for (std::size_t i = 0; i < w2.size(); ++i) w2.data()[i] = 0.1 * next();
  for (std::size_t i = 0; i < b2.size(); ++i) b2.data()[i] = 0.05 * next();
  linalg::Matrix means(2, dl), variances(2, dl, 0.8);
  for (std::size_t j = 0; j < dl; ++j) {
    means(0, j) = -0.8;
    means(1, j) = 0.8;
  }
  auto prior = stats::GaussianMixture::Create({0.5, 0.5}, means, variances);
  P3GM_CHECK(prior.ok());
  auto pkg = core::ReleasePackage::FromParts(
      "bench_decode", /*num_classes=*/2, core::DecoderType::kGaussian,
      std::move(*prior), std::move(w1), std::move(b1), std::move(w2),
      std::move(b2));
  P3GM_CHECK(pkg.ok());
  return std::move(*pkg);
}

// Decodes through DecodeLatentInto — the serve batcher's call — so each
// runtime is measured with the same reusable-buffer contract the
// production path has. The reference path still allocates its
// intermediate matrices internally; that is its real per-batch cost.
void DecodeOnce(const core::ReleasePackage& pkg, const linalg::Matrix& z,
                bool planned, linalg::Matrix* out) {
  infer::SetPlannedDecodeEnabled(planned);
  const util::Status status = pkg.DecodeLatentInto(z, out);
  P3GM_CHECK_MSG(status.ok(), status.ToString().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace p3gm

int main() {
  using namespace p3gm;  // NOLINT(build/namespaces)

  bench::BenchRun run("decode");
  bench::PrintTitle(
      "decoder synthesis: planned infer runtime vs reference forward pass");

  const std::vector<std::size_t> kBatches =
      bench::SmokeMode() ? std::vector<std::size_t>{1, 16, 256}
                         : std::vector<std::size_t>{1, 16, 64, 256, 1024};
  // Rows decoded per measured rep: equal row budget at every batch size
  // so per-pass fixed costs show up in the batch=1 column rather than in
  // rep-count asymmetry.
  const std::size_t kRowsPerRep = bench::SmokeMode() ? 256 : 2048;

  const core::ReleasePackage pkg = bench::MakeDecodePackage();
  util::Rng z_rng(20260808);
  linalg::Matrix z_full = pkg.SampleLatent(kBatches.back(), &z_rng);

  // Per-batch latent slices (row-major prefix copies).
  std::vector<linalg::Matrix> z_by_batch;
  for (const std::size_t b : kBatches) {
    linalg::Matrix z(b, z_full.cols());
    std::memcpy(z.data(), z_full.data(),
                b * z_full.cols() * sizeof(double));
    z_by_batch.push_back(std::move(z));
  }

  // Equivalence gate first: the planned runtime must reproduce the
  // reference bytes on every batch size it is about to be timed on.
  for (std::size_t i = 0; i < kBatches.size(); ++i) {
    linalg::Matrix a, b;
    bench::DecodeOnce(pkg, z_by_batch[i], true, &a);
    bench::DecodeOnce(pkg, z_by_batch[i], false, &b);
    P3GM_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols() &&
                       std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(double)) == 0,
                   "planned decode diverged from reference");
  }

  // Interleaved measurement: round r samples every (runtime, batch)
  // configuration once before any configuration gets rep r+1, so machine
  // drift cancels in the planned/reference ratio.
  // Each configuration keeps its own output buffer across reps — the
  // steady state a serving batcher reaches after its first batch.
  std::vector<linalg::Matrix> outs(2 * kBatches.size());
  std::vector<obs::bench::BenchSuite::NamedBench> benches;
  for (std::size_t i = 0; i < kBatches.size(); ++i) {
    const std::size_t batch = kBatches[i];
    const std::size_t iters =
        (kRowsPerRep + batch - 1) / batch;  // >= kRowsPerRep rows.
    const linalg::Matrix* z = &z_by_batch[i];
    linalg::Matrix* planned_out = &outs[2 * i];
    linalg::Matrix* reference_out = &outs[2 * i + 1];
    benches.push_back({"decode/planned_b" + std::to_string(batch),
                       [&pkg, z, iters, planned_out] {
                         for (std::size_t it = 0; it < iters; ++it) {
                           bench::DecodeOnce(pkg, *z, true, planned_out);
                         }
                       }});
    benches.push_back({"decode/reference_b" + std::to_string(batch),
                       [&pkg, z, iters, reference_out] {
                         for (std::size_t it = 0; it < iters; ++it) {
                           bench::DecodeOnce(pkg, *z, false, reference_out);
                         }
                       }});
  }
  run.suite().RunInterleaved(benches);
  infer::SetPlannedDecodeEnabled(true);

  // Samples/sec from the median rep of each configuration.
  auto rows_per_second = [&](const std::string& name,
                             std::size_t batch) -> double {
    const std::size_t iters = (kRowsPerRep + batch - 1) / batch;
    for (const obs::bench::BenchResult& r : run.suite().results()) {
      if (r.name == name && r.stats.median > 0.0) {
        return static_cast<double>(iters * batch) / r.stats.median;
      }
    }
    return 0.0;
  };

  std::printf("%-8s %16s %16s %10s\n", "batch", "planned rows/s",
              "reference rows/s", "speedup");
  util::CsvWriter csv("bench_decode.csv");
  csv.WriteRow({"batch", "planned_rows_per_s", "reference_rows_per_s",
                "speedup"});
  double speedup_at_256 = 0.0;
  for (const std::size_t batch : kBatches) {
    const double planned =
        rows_per_second("decode/planned_b" + std::to_string(batch), batch);
    const double reference = rows_per_second(
        "decode/reference_b" + std::to_string(batch), batch);
    const double speedup = reference > 0.0 ? planned / reference : 0.0;
    if (batch == 256) speedup_at_256 = speedup;
    std::printf("%-8zu %16.0f %16.0f %9.2fx\n", batch, planned, reference,
                speedup);
    csv.WriteRow({std::to_string(batch), util::FormatDouble(planned, 1),
                  util::FormatDouble(reference, 1),
                  util::FormatDouble(speedup, 3)});
  }
  bench::PrintRule();
  std::printf("planned-decode speedup at batch 256: %.2fx samples/sec "
              "(latent 64 -> hidden 512 -> 786 outputs, %s tier)\n",
              speedup_at_256,
              infer::TierName(infer::ActiveTier()));
  run.AppendRunInfo(&csv);
  return 0;
}
