// Fig. 7 reproduction: learning-efficiency comparison of DP-VAE,
// P3GM(AE) and P3GM at matched privacy budgets.
//  * 7a/7b — per-iteration reconstruction loss on MNIST-like and
//    Credit-like data (DP-VAE vs P3GM). Paper claim: P3GM converges
//    earlier and more monotonically.
//  * 7c/7d — per-epoch downstream utility (CNN accuracy on MNIST-like,
//    AUROC on Credit-like). Paper claim: P3GM(AE) converges first but
//    plateaus below P3GM; DP-VAE trails both.

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "data/transforms.h"
#include "eval/cnn_classifier.h"
#include "eval/logistic_regression.h"
#include "eval/metrics.h"
#include "util/csv.h"

using namespace p3gm;        // NOLINT(build/namespaces)
using namespace p3gm::bench;  // NOLINT(build/namespaces)

namespace {

std::size_t Epochs() { return SmokeMode() ? 2 : 10; }

// Calibrated DP-SGD sigma for a pure DP-SGD schedule (DP-VAE).
double DpVaeSigma(std::size_t n, std::size_t batch, std::size_t epochs) {
  dp::P3gmPrivacyParams pp;
  pp.pca_epsilon = 0.0;
  pp.em_iters = 0;
  pp.sgd_sampling_rate = static_cast<double>(batch) / static_cast<double>(n);
  pp.sgd_steps = epochs * (n / batch);
  auto sigma = dp::CalibrateSgdSigma(pp, kEpsilon, kDelta);
  P3GM_CHECK(sigma.ok());
  return *sigma;
}

// Downstream utility of a model snapshot: samples labeled rows and
// scores them on the held-out test set.
template <typename Model>
double SnapshotUtility(Model* model, const data::Split& split, bool image) {
  util::Rng rng(17);
  const std::size_t n_gen = std::min<std::size_t>(800, split.train.size());
  linalg::Matrix joint = model->Sample(n_gen, &rng);
  data::LabeledRows rows =
      data::DetachLabels(joint, split.train.num_classes);
  if (image) {
    eval::CnnClassifier::Options copt;
    copt.conv_channels = 8;
    copt.hidden = 32;
    copt.epochs = 1;
    copt.batch_size = 32;
    eval::CnnClassifier cnn(copt);
    if (!cnn.Fit(rows.features, rows.labels).ok()) return 0.0;
    return eval::Accuracy(cnn.Predict(split.test.features),
                          split.test.labels);
  }
  eval::LogisticRegression lr;
  if (!lr.Fit(rows.features, rows.labels).ok()) return 0.5;
  auto auroc = eval::Auroc(lr.PredictProba(split.test.features),
                           split.test.labels);
  return auroc.ok() ? *auroc : 0.5;
}

struct Curves {
  std::vector<double> dpvae_recon, p3gm_recon;            // Per iteration.
  std::vector<double> dpvae_util, p3gm_util, ae_util;     // Per epoch.
};

Curves RunDataset(const std::string& tag, const data::Split& split,
                  bool image, core::PgmOptions pgm_base,
                  std::size_t batch) {
  Curves out;
  const std::size_t n = split.train.size();
  const linalg::Matrix joint = data::AttachLabels(
      split.train.features, split.train.labels, split.train.num_classes);

  // DP-VAE.
  {
    Section section(tag + "/dpvae");
    core::VaeOptions opt;
    opt.hidden = pgm_base.hidden;
    opt.latent_dim = pgm_base.latent_dim;
    opt.epochs = Epochs();
    opt.batch_size = batch;
    opt.differentially_private = true;
    opt.sgd_sigma = DpVaeSigma(n, batch, Epochs());
    core::Vae vae(opt);
    util::Status st = vae.Fit(joint, [&](const core::TrainProgress&) {
      out.dpvae_util.push_back(SnapshotUtility(&vae, split, image));
    });
    P3GM_CHECK_MSG(st.ok(), st.ToString().c_str());
    out.dpvae_recon = vae.trace().recon_loss;
  }
  // P3GM and the P3GM(AE) ablation.
  for (bool freeze : {false, true}) {
    Section section(tag + (freeze ? "/p3gm_ae" : "/p3gm"));
    core::PgmOptions opt = pgm_base;
    opt.epochs = Epochs();
    opt.batch_size = batch;
    opt.freeze_variance = freeze;
    opt = MakePrivate(opt, n);
    core::Pgm pgm(opt);
    std::vector<double>* util_curve = freeze ? &out.ae_util : &out.p3gm_util;
    util::Status st = pgm.Fit(joint, [&](const core::TrainProgress&) {
      util_curve->push_back(SnapshotUtility(&pgm, split, image));
    });
    P3GM_CHECK_MSG(st.ok(), st.ToString().c_str());
    if (!freeze) out.p3gm_recon = pgm.trace().recon_loss;
  }
  return out;
}

void Report(const std::string& tag, const Curves& c, const char* metric,
            const BenchRun& run) {
  std::printf("-- %s reconstruction loss per iteration (first/last 3):\n",
              tag.c_str());
  auto head_tail = [](const std::vector<double>& v) {
    std::string s;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, v.size()); ++i) {
      s += util::FormatDouble(v[i], 2) + " ";
    }
    s += "... ";
    for (std::size_t i = v.size() >= 3 ? v.size() - 3 : 0; i < v.size();
         ++i) {
      s += util::FormatDouble(v[i], 2) + " ";
    }
    return s;
  };
  std::printf("   DP-VAE: %s\n", head_tail(c.dpvae_recon).c_str());
  std::printf("   P3GM:   %s\n", head_tail(c.p3gm_recon).c_str());

  std::printf("-- %s %s per epoch:\n", tag.c_str(), metric);
  std::printf("   %-8s", "epoch");
  for (std::size_t e = 0; e < c.p3gm_util.size(); ++e) {
    std::printf(" %6zu", e + 1);
  }
  std::printf("\n   %-8s", "DP-VAE");
  for (double v : c.dpvae_util) std::printf(" %6.3f", v);
  std::printf("\n   %-8s", "P3GM(AE)");
  for (double v : c.ae_util) std::printf(" %6.3f", v);
  std::printf("\n   %-8s", "P3GM");
  for (double v : c.p3gm_util) std::printf(" %6.3f", v);
  std::printf("\n\n");

  util::CsvWriter csv("fig7_" + tag + ".csv");
  csv.WriteHeader({"epoch", "dpvae", "p3gm_ae", "p3gm"});
  for (std::size_t e = 0; e < c.p3gm_util.size(); ++e) {
    csv.WriteRow({util::FormatDouble(static_cast<double>(e + 1), 0),
                  util::FormatDouble(c.dpvae_util[e]),
                  util::FormatDouble(c.ae_util[e]),
                  util::FormatDouble(c.p3gm_util[e])});
  }
  util::CsvWriter rcsv("fig7_" + tag + "_recon.csv");
  rcsv.WriteHeader({"iteration", "dpvae", "p3gm"});
  const std::size_t iters =
      std::min(c.dpvae_recon.size(), c.p3gm_recon.size());
  for (std::size_t i = 0; i < iters; ++i) {
    rcsv.WriteRow({util::FormatDouble(static_cast<double>(i), 0),
                   util::FormatDouble(c.dpvae_recon[i]),
                   util::FormatDouble(c.p3gm_recon[i])});
  }
  run.AppendRunInfo(&csv);
  run.AppendRunInfo(&rcsv);
}

}  // namespace

int main() {
  PrintTitle("Fig. 7: learning efficiency, DP-VAE vs P3GM(AE) vs P3GM");
  BenchRun total("fig7_learning");

  {
    data::Dataset mnist = BenchMnist(10000);
    auto split = data::StratifiedSplit(mnist, 0.1, 11);
    P3GM_CHECK(split.ok());
    Curves c = RunDataset("mnist", *split, /*image=*/true,
                          ImagePgmOptions(), SmokeMode() ? 100 : 240);
    Report("mnist", c, "accuracy", total);
  }
  {
    data::Dataset credit = BenchCredit();
    auto split = data::StratifiedSplit(credit, 0.25, 11);
    P3GM_CHECK(split.ok());
    Curves c = RunDataset("credit", *split, /*image=*/false,
                          CreditPgmOptions(), SmokeMode() ? 100 : 200);
    Report("credit", c, "AUROC", total);
  }

  std::printf(
      "paper shape check: P3GM recon loss below DP-VAE's and decreasing "
      "more monotonically; P3GM(AE) rises earliest, P3GM ends highest.\n");
  std::printf("[fig7 done in %.1fs; CSV: fig7_*.csv]\n",
              total.ElapsedSeconds());
  return 0;
}
