// Ablations beyond the paper's figures, probing the design choices
// DESIGN.md calls out, all on the Credit-like dataset at (1, 1e-5)-DP:
//
//  1. MoG component count dm (paper fixes dm = 3): too few components
//     underfit the latent distribution, too many dilute DP-EM's budget.
//  2. DP-EM iteration count Te (paper fixes Te = 20): each iteration
//     costs privacy, so more EM is not free.
//  3. Observation model: Bernoulli vs Gaussian decoder on tabular data.
//
// Each row reports the downstream mean AUROC of the synthetic release.

#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/csv.h"

using namespace p3gm;        // NOLINT(build/namespaces)
using namespace p3gm::bench;  // NOLINT(build/namespaces)

namespace {

// Returns the downstream AUROC, or nothing when the configuration's
// fixed PCA/EM budget already exceeds the epsilon target — itself an
// ablation finding (e.g. many MoG components make DP-EM unaffordable).
std::optional<double> Run(core::PgmOptions opt, const data::Split& split) {
  opt.differentially_private = true;
  auto sigma = core::Pgm::CalibrateSigma(opt, split.train.size(), kEpsilon,
                                         kDelta);
  if (!sigma.ok()) return std::nullopt;
  opt.sgd_sigma = *sigma;
  core::PgmSynthesizer synth(opt);
  return RunProtocol(&synth, split).mean_auroc;
}

void Report(util::CsvWriter* csv, const char* knob, const std::string& value,
            const std::optional<double>& auroc, double seconds) {
  if (auroc.has_value()) {
    std::printf("   %s=%-10s AUROC=%.4f (%.0fs)\n", knob, value.c_str(),
                *auroc, seconds);
    csv->WriteRow({knob, value, util::FormatDouble(*auroc)});
  } else {
    std::printf("   %s=%-10s infeasible: PCA/EM budget alone exceeds "
                "epsilon=%.1f\n",
                knob, value.c_str(), kEpsilon);
    csv->WriteRow({knob, value, "infeasible"});
  }
}

}  // namespace

int main() {
  PrintTitle("Ablations: dm, Te, decoder type (Credit-like, eps = 1)");
  BenchRun total("ablation");

  data::Dataset credit = BenchCredit();
  auto split = data::StratifiedSplit(credit, 0.25, 11);
  P3GM_CHECK(split.ok());
  core::PgmOptions base = CreditPgmOptions();
  base.epochs = SmokeMode() ? 2 : 25;  // Trimmed: 3 sweeps below.

  util::CsvWriter csv("ablation.csv");
  csv.WriteHeader({"knob", "value", "auroc"});

  std::printf("-- MoG components dm (paper: 3)\n");
  const std::vector<std::size_t> dms =
      SmokeMode() ? std::vector<std::size_t>{1, 3}
                  : std::vector<std::size_t>{1, 3, 6, 12};
  for (std::size_t dm : dms) {
    Section section("dm_" + std::to_string(dm));
    core::PgmOptions opt = base;
    opt.mog_components = dm;
    // Run() before taking the elapsed time (argument evaluation order is
    // unspecified).
    const auto auroc = Run(opt, *split);
    Report(&csv, "dm", std::to_string(dm), auroc, section.Stop());
  }

  std::printf("-- DP-EM iterations Te (paper: 20)\n");
  const std::vector<std::size_t> tes =
      SmokeMode() ? std::vector<std::size_t>{5}
                  : std::vector<std::size_t>{5, 20, 60};
  for (std::size_t te : tes) {
    Section section("te_" + std::to_string(te));
    core::PgmOptions opt = base;
    opt.em_iters = te;
    const auto auroc = Run(opt, *split);
    Report(&csv, "Te", std::to_string(te), auroc, section.Stop());
  }

  std::printf("-- decoder observation model\n");
  for (bool gaussian : {false, true}) {
    Section section(gaussian ? "decoder_gaussian" : "decoder_bernoulli");
    core::PgmOptions opt = base;
    opt.decoder = gaussian ? core::DecoderType::kGaussian
                           : core::DecoderType::kBernoulli;
    const auto auroc = Run(opt, *split);
    Report(&csv, "decoder", gaussian ? "gaussian" : "bernoulli", auroc,
           section.Stop());
  }

  total.AppendRunInfo(&csv);
  std::printf("\n[ablation done in %.1fs; CSV: ablation.csv]\n",
              total.ElapsedSeconds());
  return 0;
}
