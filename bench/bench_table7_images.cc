// Table VII reproduction: CNN classification accuracy on MNIST-like and
// Fashion-MNIST-like data, training the paper's CNN on synthetic data
// from VAE (non-private), DP-GM, PrivBayes and P3GM at (1, 1e-5)-DP and
// testing on real held-out images. Paper claim: P3GM is far above DP-GM
// and PrivBayes and within a few points of the non-private VAE.

#include <memory>
#include <vector>

#include "baselines/dp_gm.h"
#include "baselines/privbayes.h"
#include "bench_common.h"
#include "eval/cnn_classifier.h"
#include "eval/metrics.h"
#include "util/csv.h"

using namespace p3gm;        // NOLINT(build/namespaces)
using namespace p3gm::bench;  // NOLINT(build/namespaces)

namespace {

// Bench-scale CNN (paper: 28 3x3 kernels, FC [128, 10]).
eval::CnnClassifier::Options CnnOptions() {
  eval::CnnClassifier::Options opt;
  opt.conv_channels = 16;
  opt.hidden = 64;
  opt.dropout = 0.3;
  opt.epochs = 2;
  opt.batch_size = 32;
  return opt;
}

std::size_t SmokeEpochs(std::size_t epochs) {
  return SmokeMode() ? std::min<std::size_t>(epochs, 1) : epochs;
}

double CnnAccuracyOn(const data::Dataset& train, const data::Dataset& test) {
  // The CNN saturates well below the full synthetic set; cap its
  // training data so the conv fits don't dominate the bench.
  const data::Dataset capped = train.Head(6000);
  eval::CnnClassifier cnn(CnnOptions());
  util::Status st = cnn.Fit(capped.features, capped.labels);
  P3GM_CHECK_MSG(st.ok(), st.ToString().c_str());
  return eval::Accuracy(cnn.Predict(test.features), test.labels);
}

double RunSynth(const std::string& slug, core::Synthesizer* synth,
                const data::Split& split) {
  Section section(slug);
  util::Status st = synth->Fit(split.train);
  P3GM_CHECK_MSG(st.ok(), st.ToString().c_str());
  util::Rng rng(3);
  auto gen = core::GenerateWithLabelRatio(synth, split.train.size(),
                                          split.train, &rng);
  P3GM_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  const double acc = CnnAccuracyOn(*gen, split.test);
  std::printf("   %-10s accuracy=%.4f (eps=%.2f, %.1fs)\n",
              synth->name().c_str(), acc,
              synth->ComputeEpsilon(kDelta).epsilon, section.Stop());
  return acc;
}

struct Row {
  std::string dataset;
  double vae, dpgm, privbayes, p3gm;
};

Row RunCase(const std::string& name, const std::string& slug,
            const data::Dataset& images) {
  auto split = data::StratifiedSplit(images, 0.1, 11);
  P3GM_CHECK(split.ok());
  const std::size_t n = split->train.size();
  std::printf("== %s: train n=%zu (paper: 63000)\n", name.c_str(), n);
  Row row;
  row.dataset = name;

  {
    core::VaeOptions opt;
    opt.hidden = 100;
    opt.latent_dim = 10;
    opt.epochs = SmokeEpochs(10);
    opt.batch_size = 240;
    core::VaeSynthesizer vae(opt);
    row.vae = RunSynth(slug + "/vae", &vae, *split);
  }
  {
    baselines::DpGmOptions opt;
    opt.num_clusters = 10;
    opt.vae.hidden = 100;
    opt.vae.latent_dim = 10;
    opt.vae.epochs = SmokeEpochs(8);
    opt.vae.batch_size = 60;
    auto sigma =
        baselines::DpGmSynthesizer::CalibrateSigma(opt, n, kEpsilon, kDelta);
    P3GM_CHECK(sigma.ok());
    opt.vae.sgd_sigma = *sigma;
    baselines::DpGmSynthesizer dpgm(opt);
    row.dpgm = RunSynth(slug + "/dpgm", &dpgm, *split);
  }
  {
    baselines::PrivBayesOptions opt;
    opt.epsilon = kEpsilon;
    opt.bins = 4;
    opt.degree = 1;
    opt.parent_window = 4;
    opt.max_candidates_per_round = 16;
    baselines::PrivBayesSynthesizer pb(opt);
    row.privbayes = RunSynth(slug + "/privbayes", &pb, *split);
  }
  {
    core::PgmOptions opt = MakePrivate(ImagePgmOptions(), n);
    core::PgmSynthesizer p3gm(opt);
    row.p3gm = RunSynth(slug + "/p3gm", &p3gm, *split);
  }
  std::printf("\n");
  return row;
}

}  // namespace

int main() {
  PrintTitle("Table VII: CNN accuracy on image datasets, (1,1e-5)-DP");
  BenchRun total("table7_images");

  std::vector<Row> rows;
  rows.push_back(RunCase("MNIST", "mnist", BenchMnist()));
  rows.push_back(RunCase("Fashion-MNIST", "fashion", BenchFashion()));

  util::CsvWriter csv("table7_images.csv");
  csv.WriteHeader({"dataset", "vae", "dpgm", "privbayes", "p3gm"});
  std::printf("%-16s %9s %9s %9s %9s\n", "dataset", "VAE", "DP-GM",
              "PrivBayes", "P3GM");
  for (const Row& r : rows) {
    std::printf("%-16s %9.4f %9.4f %9.4f %9.4f\n", r.dataset.c_str(), r.vae,
                r.dpgm, r.privbayes, r.p3gm);
    csv.WriteRow({r.dataset, util::FormatDouble(r.vae),
                  util::FormatDouble(r.dpgm),
                  util::FormatDouble(r.privbayes),
                  util::FormatDouble(r.p3gm)});
  }
  std::printf(
      "\npaper shape check: P3GM >> DP-GM > PrivBayes; P3GM within a few "
      "points of VAE.\n");
  total.AppendRunInfo(&csv);
  std::printf("[table7 done in %.1fs; CSV: table7_images.csv]\n",
              total.ElapsedSeconds());
  return 0;
}
