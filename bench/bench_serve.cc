// Serving throughput in two layers:
//
//  1. Engine: 8 producer threads drive the request Batcher directly
//     (no sockets), comparing max_batch=1 against coalesced passes.
//     This isolates what batching actually buys: the per-pass fixed
//     cost — executor wakeup, queue pop, trace span, metrics, matrix
//     setup, and the decoder pass preamble — is paid once per batch
//     instead of once per request, and on multi-core hosts the stacked
//     pass additionally clears the row-parallel gemm grain that
//     single-request passes sit below.
//  2. End to end: the same comparison over real TCP with 8 concurrent
//     keep-alive HTTP clients. On single-core hosts this is bounded by
//     per-request socket I/O (which batching cannot remove), so the
//     end-to-end ratio is a floor for what multi-core deployments see.
//
// Emits BENCH_serve.json for the tools/bench_compare regression gate.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/release.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/sample_cache.h"
#include "serve/server.h"
#include "stats/gmm.h"
#include "util/csv.h"

namespace p3gm {
namespace bench {
namespace {

// A serving-scale decoder (latent 12 -> hidden 256 -> 40 outputs incl.
// a 2-class one-hot block); weights are fixed pseudo-random so the run
// is reproducible without a training pipeline.
core::ReleasePackage MakeServePackage() {
  const std::size_t dl = 12, h = 256, d = 40;
  linalg::Matrix w1(dl, h), b1(1, h), w2(h, d), b2(1, d);
  std::uint64_t state = 0x243f6a8885a308d3ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 2000) / 1000.0 - 1.0;
  };
  for (std::size_t i = 0; i < dl; ++i) {
    for (std::size_t j = 0; j < h; ++j) w1(i, j) = 0.2 * next();
  }
  for (std::size_t j = 0; j < h; ++j) b1(0, j) = 0.05 * next();
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < d; ++j) w2(i, j) = 0.2 * next();
  }
  for (std::size_t j = 0; j < d; ++j) b2(0, j) = 0.05 * next();
  linalg::Matrix means(3, dl), variances(3, dl, 0.7);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t j = 0; j < dl; ++j) {
      means(k, j) = static_cast<double>(k) - 1.0;
    }
  }
  auto prior = stats::GaussianMixture::Create({0.3, 0.3, 0.4}, means,
                                              variances);
  P3GM_CHECK(prior.ok());
  auto pkg = core::ReleasePackage::FromParts(
      "bench", /*num_classes=*/2, core::DecoderType::kBernoulli,
      std::move(*prior), std::move(w1), std::move(b1), std::move(w2),
      std::move(b2));
  P3GM_CHECK(pkg.ok());
  return std::move(*pkg);
}

// A minimal decoder (latent 2 -> hidden 4 -> 4 outputs) for the engine
// section: with per-row compute this small, throughput is bound by the
// per-pass dispatch cost — the quantity batching amortizes — rather
// than by the decoder arithmetic.
core::ReleasePackage MakeDispatchPackage() {
  const std::size_t dl = 2, h = 4, d = 4;
  linalg::Matrix w1(dl, h, 0.1), b1(1, h, 0.0), w2(h, d, 0.1),
      b2(1, d, 0.0);
  linalg::Matrix means(2, dl), variances(2, dl, 0.5);
  means(0, 0) = -1.0;
  means(1, 0) = 1.0;
  auto prior = stats::GaussianMixture::Create({0.5, 0.5}, means, variances);
  P3GM_CHECK(prior.ok());
  auto pkg = core::ReleasePackage::FromParts(
      "bench", /*num_classes=*/2, core::DecoderType::kBernoulli,
      std::move(*prior), std::move(w1), std::move(b1), std::move(w2),
      std::move(b2));
  P3GM_CHECK(pkg.ok());
  return std::move(*pkg);
}

struct ScenarioResult {
  double seconds = 0.0;
  double requests_per_second = 0.0;
  int errors = 0;
};

// Engine-level scenario: `producers` threads submit `jobs_per_producer`
// single-model sample jobs straight into a Batcher and the run is timed
// until every completion lands.
ScenarioResult RunEngineScenario(
    std::shared_ptr<const core::ReleasePackage> pkg,
    const std::string& section, std::size_t max_batch, int producers,
    int jobs_per_producer, std::size_t rows_per_job) {
  serve::BatcherOptions options;
  options.max_batch_requests = max_batch;
  serve::SampleCache cache(0);

  const int total = producers * jobs_per_producer;
  // Room for the whole workload: producers hand off and get out of the
  // way instead of yield-spinning against the executor for the CPU,
  // which would turn scheduler luck into measurement noise.
  options.queue_limit = static_cast<std::size_t>(total) + 1;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::atomic<int> completed{0};
  std::atomic<int> errors{0};

  serve::Batcher batcher(
      options, &cache,
      [&](std::uint64_t, util::Result<data::Dataset> result) {
        if (!result.ok() ||
            result->size() != rows_per_job) {
          errors.fetch_add(1);
        }
        // Lock-free on the hot path; only the last completion takes the
        // mutex to publish the wakeup.
        if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            total) {
          std::lock_guard<std::mutex> lock(done_mutex);
          done_cv.notify_one();
        }
      });
  batcher.Start();

  ScenarioResult out;
  {
    Section timer(section);
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (int j = 0; j < jobs_per_producer; ++j) {
          serve::SampleJob job;
          job.ticket =
              static_cast<std::uint64_t>(p) * jobs_per_producer + j;
          job.model = "bench";
          job.package = pkg;
          job.n = rows_per_job;
          job.stream_index = job.ticket;
          while (!batcher.Enqueue(job)) std::this_thread::yield();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] {
      return completed.load(std::memory_order_acquire) == total;
    });
    out.seconds = timer.Stop();
  }
  batcher.Stop();
  out.errors = errors.load();
  out.requests_per_second =
      out.seconds > 0 ? (total - out.errors) / out.seconds : 0.0;
  return out;
}

// End-to-end scenario: `clients` keep-alive HTTP connections each fire
// `requests` sample requests of `rows_per_request` rows against a fresh
// server with the given batching width.
ScenarioResult RunHttpScenario(const std::string& pkg_path,
                               const std::string& section,
                               std::size_t max_batch, int clients,
                               int requests, int rows_per_request) {
  serve::ServerOptions options;
  options.port = 0;
  options.max_batch = max_batch;
  options.queue_limit = 1024;
  serve::Server server(options);
  P3GM_CHECK(server.Init({pkg_path}).ok());
  P3GM_CHECK(server.Start().ok());

  const std::string body = "{\"model\": \"bench\", \"n\": " +
                           std::to_string(rows_per_request) + "}";
  std::atomic<int> errors{0};
  ScenarioResult result;
  {
    Section timer(section);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        serve::HttpClient client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) {
          errors.fetch_add(requests);
          return;
        }
        for (int r = 0; r < requests; ++r) {
          auto response = client.Post("/v1/sample", body);
          if (!response.ok() || response->status != 200) {
            errors.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    result.seconds = timer.Stop();
  }
  server.Stop();
  result.errors = errors.load();
  const int total = clients * requests;
  result.requests_per_second =
      result.seconds > 0 ? (total - result.errors) / result.seconds : 0.0;
  return result;
}

double Ratio(const ScenarioResult& batched,
             const ScenarioResult& unbatched) {
  return unbatched.requests_per_second > 0
             ? batched.requests_per_second / unbatched.requests_per_second
             : 0.0;
}

void PrintScenarioRow(const char* name, const ScenarioResult& r) {
  std::printf("%-26s %10.3f %14.1f %8d\n", name, r.seconds,
              r.requests_per_second, r.errors);
}

}  // namespace
}  // namespace bench
}  // namespace p3gm

int main() {
  using namespace p3gm;  // NOLINT(build/namespaces)

  bench::BenchRun run("serve");
  bench::PrintTitle("p3gm serve: batched vs unbatched sample throughput");

  const int kClients = 8;
  const int kEngineJobs = bench::SmokeMode() ? 4000 : 20000;
  const int kHttpRequests = bench::SmokeMode() ? 40 : 400;
  const std::size_t kEngineRows = 1;
  const int kHttpRows = 16;
  const std::size_t kMaxBatch = 16;
  const std::size_t kEngineBatch = 32;

  auto pkg = std::make_shared<const core::ReleasePackage>(
      bench::MakeServePackage());
  // The registry serves each package under its file basename.
  const std::string pkg_path = "bench.release";
  P3GM_CHECK(pkg->Save(pkg_path).ok());

  // --- Engine: batcher throughput without sockets. Single-row jobs on a
  // minimal decoder make the per-pass dispatch cost the dominant term,
  // which is exactly the cost batching exists to amortize.
  auto dispatch_pkg = std::make_shared<const core::ReleasePackage>(
      bench::MakeDispatchPackage());
  (void)bench::RunEngineScenario(dispatch_pkg, "serve/warmup_engine",
                                 kEngineBatch, kClients, kEngineJobs / 4,
                                 kEngineRows);
  // Best-of-3 per configuration, interleaved: short dispatch-bound
  // windows are scheduler-noise-prone, and the best rep is the standard
  // estimate of the noise-free cost.
  bench::ScenarioResult engine_unbatched, engine_batched;
  for (int rep = 0; rep < 3; ++rep) {
    const auto u = bench::RunEngineScenario(
        dispatch_pkg, "serve/engine_unbatched", 1, kClients, kEngineJobs,
        kEngineRows);
    const auto b = bench::RunEngineScenario(
        dispatch_pkg, "serve/engine_batched", kEngineBatch, kClients,
        kEngineJobs, kEngineRows);
    if (u.requests_per_second > engine_unbatched.requests_per_second ||
        u.errors > 0) {
      engine_unbatched = u;
    }
    if (b.requests_per_second > engine_batched.requests_per_second ||
        b.errors > 0) {
      engine_batched = b;
    }
  }
  const double engine_ratio = bench::Ratio(engine_batched,
                                           engine_unbatched);

  // --- End to end: the same comparison over real TCP. Interleave
  // warmups so transient machine load biases neither configuration.
  (void)bench::RunHttpScenario(pkg_path, "serve/warmup_http_unbatched", 1,
                               kClients, kHttpRequests / 4, kHttpRows);
  (void)bench::RunHttpScenario(pkg_path, "serve/warmup_http_batched",
                               kMaxBatch, kClients, kHttpRequests / 4,
                               kHttpRows);
  const auto http_unbatched = bench::RunHttpScenario(
      pkg_path, "serve/http_unbatched", 1, kClients, kHttpRequests,
      kHttpRows);
  const auto http_batched = bench::RunHttpScenario(
      pkg_path, "serve/http_batched", kMaxBatch, kClients, kHttpRequests,
      kHttpRows);
  const double http_ratio = bench::Ratio(http_batched, http_unbatched);

  std::printf("%-26s %10s %14s %8s\n", "scenario", "seconds", "req/s",
              "errors");
  bench::PrintScenarioRow("engine unbatched", engine_unbatched);
  bench::PrintScenarioRow("engine batched", engine_batched);
  bench::PrintScenarioRow("http unbatched", http_unbatched);
  bench::PrintScenarioRow("http batched", http_batched);
  bench::PrintRule();
  std::printf("batching speedup: %.2fx requests/sec at %d concurrent "
              "clients (engine, max_batch=%zu)\n",
              engine_ratio, kClients, kEngineBatch);
  std::printf("end-to-end http speedup: %.2fx requests/sec at %d clients "
              "(threads=%zu; single-core hosts are bounded by per-request "
              "socket I/O)\n",
              http_ratio, kClients, util::NumThreads());
  P3GM_CHECK_MSG(engine_unbatched.errors == 0 &&
                     engine_batched.errors == 0 &&
                     http_unbatched.errors == 0 && http_batched.errors == 0,
                 "serve bench saw failed requests");

  util::CsvWriter csv("bench_serve.csv");
  csv.WriteRow({"scenario", "seconds", "requests_per_second", "errors"});
  auto write = [&csv](const char* name, const bench::ScenarioResult& r) {
    csv.WriteRow({name, util::FormatDouble(r.seconds, 6),
                  util::FormatDouble(r.requests_per_second, 2),
                  std::to_string(r.errors)});
  };
  write("engine_unbatched", engine_unbatched);
  write("engine_batched", engine_batched);
  write("http_unbatched", http_unbatched);
  write("http_batched", http_batched);
  csv.WriteRow({"engine_speedup", util::FormatDouble(engine_ratio, 4), "",
                ""});
  csv.WriteRow({"http_speedup", util::FormatDouble(http_ratio, 4), "", ""});
  run.AppendRunInfo(&csv);
  ::unlink(pkg_path.c_str());
  return 0;
}
