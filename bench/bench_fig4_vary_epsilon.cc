// Fig. 4 reproduction: AUROC and AUPRC on the Kaggle-Credit-like dataset
// as the privacy level epsilon varies, for PGM (non-private reference
// line), P3GM, DP-GM and PrivBayes (delta = 1e-5). Paper claim: P3GM
// degrades slowly as epsilon shrinks; DP-GM degrades quickly; PrivBayes
// is flat and low.

#include <cmath>
#include <vector>

#include "baselines/dp_gm.h"
#include "baselines/privbayes.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace p3gm;        // NOLINT(build/namespaces)
using namespace p3gm::bench;  // NOLINT(build/namespaces)

int main() {
  PrintTitle("Fig. 4: utility vs epsilon on Kaggle-Credit-like data");
  BenchRun total("fig4_vary_epsilon");

  data::Dataset credit = BenchCredit();
  auto split = data::StratifiedSplit(credit, 0.25, 11);
  P3GM_CHECK(split.ok());
  const std::size_t n = split->train.size();

  // Shorter schedule than Table V so the sweep stays tractable.
  core::PgmOptions base = CreditPgmOptions();
  base.epochs = SmokeMode() ? 2 : 30;

  // Non-private reference.
  double pgm_roc, pgm_prc;
  {
    Section section("pgm_reference");
    core::PgmSynthesizer pgm(base);
    auto res = RunProtocol(&pgm, *split);
    pgm_roc = res.mean_auroc;
    pgm_prc = res.mean_auprc;
    std::printf("PGM (non-private): AUROC=%.4f AUPRC=%.4f\n\n", pgm_roc,
                pgm_prc);
  }

  const std::vector<double> epsilons =
      SmokeMode() ? std::vector<double>{1.0}
                  : std::vector<double>{0.2, 0.5, 1.0, 3.0, 10.0};
  util::CsvWriter csv("fig4_vary_epsilon.csv");
  csv.WriteHeader({"epsilon", "model", "auroc", "auprc"});
  std::printf("%8s %10s %10s %10s %10s %10s %10s\n", "epsilon", "P3GM-ROC",
              "DPGM-ROC", "PB-ROC", "P3GM-PRC", "DPGM-PRC", "PB-PRC");

  for (double eps : epsilons) {
    Section section("eps_" + util::FormatDouble(eps, 2));
    double p3gm_roc = 0.5, p3gm_prc = 0.0;
    {
      // Scale each component's share with the total budget, as the paper
      // does ("we set sigma_e as epsilon = 1 holds"): pure-DP PCA share
      // linear in eps, EM's RDP share (proportional to 1/sigma_e^2)
      // linear in eps.
      core::PgmOptions opt = base;
      opt.pca_epsilon = base.use_pca ? 0.1 * eps : 0.0;
      // The 160 constant keeps DP-EM's share under ~half the budget even
      // at the smallest epsilon in the sweep.
      opt.em_sigma = 160.0 / std::sqrt(eps);
      auto opt_or = core::Pgm::CalibrateSigma(opt, n, eps, kDelta);
      if (opt_or.ok()) {
        opt.differentially_private = true;
        opt.sgd_sigma = *opt_or;
        core::PgmSynthesizer p3gm(opt);
        auto res = RunProtocol(&p3gm, *split);
        p3gm_roc = res.mean_auroc;
        p3gm_prc = res.mean_auprc;
      }
    }
    double dpgm_roc = 0.5, dpgm_prc = 0.0;
    {
      baselines::DpGmOptions opt;
      opt.num_clusters = 5;
      // Same per-component budget scaling as P3GM above.
      opt.kmeans_sigma = 32.0 / std::sqrt(eps);
      opt.count_sigma = opt.kmeans_sigma;
      opt.vae.hidden = 100;
      opt.vae.latent_dim = 10;
      opt.vae.epochs = SmokeMode() ? 2 : 15;
      opt.vae.batch_size = 100;
      auto sigma =
          baselines::DpGmSynthesizer::CalibrateSigma(opt, n, eps, kDelta);
      if (sigma.ok()) {
        opt.vae.sgd_sigma = *sigma;
        baselines::DpGmSynthesizer dpgm(opt);
        auto res = RunProtocol(&dpgm, *split);
        dpgm_roc = res.mean_auroc;
        dpgm_prc = res.mean_auprc;
      }
    }
    double pb_roc, pb_prc;
    {
      baselines::PrivBayesOptions opt;
      opt.epsilon = eps;
      opt.bins = 8;
      baselines::PrivBayesSynthesizer pb(opt);
      auto res = RunProtocol(&pb, *split);
      pb_roc = res.mean_auroc;
      pb_prc = res.mean_auprc;
    }
    std::printf("%8.2f %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f (%.0fs)\n",
                eps, p3gm_roc, dpgm_roc, pb_roc, p3gm_prc, dpgm_prc, pb_prc,
                section.Stop());
    csv.WriteRow({util::FormatDouble(eps, 2), "P3GM",
                  util::FormatDouble(p3gm_roc), util::FormatDouble(p3gm_prc)});
    csv.WriteRow({util::FormatDouble(eps, 2), "DP-GM",
                  util::FormatDouble(dpgm_roc), util::FormatDouble(dpgm_prc)});
    csv.WriteRow({util::FormatDouble(eps, 2), "PrivBayes",
                  util::FormatDouble(pb_roc), util::FormatDouble(pb_prc)});
  }
  util::CsvWriter ref("fig4_reference.csv");
  ref.WriteHeader({"model", "auroc", "auprc"});
  ref.WriteRow({"PGM", util::FormatDouble(pgm_roc),
                util::FormatDouble(pgm_prc)});

  std::printf(
      "\npaper shape check: P3GM approaches PGM as eps grows and degrades "
      "mildly as eps -> 0.2; DP-GM falls faster; PrivBayes flat/low.\n");
  total.AppendRunInfo(&csv);
  std::printf("[fig4 done in %.1fs; CSV: fig4_vary_epsilon.csv]\n",
              total.ElapsedSeconds());
  return 0;
}
