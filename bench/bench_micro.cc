// Substrate micro-benchmarks (google-benchmark): the dense kernels,
// eigensolver, privacy accountant and per-example-gradient machinery the
// P3GM pipeline sits on. Not part of the paper's evaluation; used to
// watch for performance regressions.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dp/accountant.h"
#include "obs/bench/harness.h"
#include "dp/mechanisms.h"
#include "linalg/covariance.h"
#include "linalg/eigen_sym.h"
#include "linalg/ops.h"
#include "nn/dp_sgd.h"
#include "nn/linear.h"
#include "pca/pca.h"
#include "stats/gmm.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace {

using p3gm::linalg::Matrix;

Matrix RandomMatrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  p3gm::util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Normal();
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p3gm::linalg::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Syrk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = RandomMatrix(512, n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p3gm::linalg::Syrk(a));
  }
}
BENCHMARK(BM_Syrk)->Arg(32)->Arg(128);

void BM_EigenSym(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix b = RandomMatrix(n, n, 5);
  Matrix a = p3gm::linalg::MatmulTransB(b, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p3gm::linalg::EigenSym(a));
  }
}
BENCHMARK(BM_EigenSym)->Arg(32)->Arg(64)->Arg(128);

void BM_TopKEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix b = RandomMatrix(n, n, 7);
  Matrix a = p3gm::linalg::MatmulTransB(b, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p3gm::linalg::TopKEigenSym(a, 10, 100));
  }
}
BENCHMARK(BM_TopKEigen)->Arg(256)->Arg(617);

void BM_SampledGaussianRdp(benchmark::State& state) {
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t alpha = 2; alpha <= 64; ++alpha) {
      total += p3gm::dp::SampledGaussianRdp(alpha, 0.01, 1.5);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SampledGaussianRdp);

void BM_FullP3gmComposition(benchmark::State& state) {
  p3gm::dp::P3gmPrivacyParams params;
  params.sgd_sampling_rate = 0.004;
  params.sgd_steps = 2600;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p3gm::dp::ComputeP3gmEpsilonRdp(params, 1e-5));
  }
}
BENCHMARK(BM_FullP3gmComposition);

void BM_SigmaCalibration(benchmark::State& state) {
  p3gm::dp::P3gmPrivacyParams params;
  params.sgd_sampling_rate = 0.004;
  params.sgd_steps = 2600;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p3gm::dp::CalibrateSgdSigma(params, 1.0, 1e-5));
  }
}
BENCHMARK(BM_SigmaCalibration);

void BM_WishartSample(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  p3gm::util::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p3gm::dp::SampleWishart(d, static_cast<double>(d) + 1.0, 0.01,
                                &rng));
  }
}
BENCHMARK(BM_WishartSample)->Arg(32)->Arg(128);

void BM_DpPca(benchmark::State& state) {
  Matrix x = RandomMatrix(1000, static_cast<std::size_t>(state.range(0)),
                          13);
  p3gm::util::Rng rng(17);
  p3gm::pca::DpPcaOptions opt;
  opt.num_components = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p3gm::pca::FitDpPca(x, opt, &rng));
  }
}
BENCHMARK(BM_DpPca)->Arg(64)->Arg(256);

void BM_GmmFit(benchmark::State& state) {
  p3gm::util::Rng rng(19);
  Matrix x(2000, 10);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double shift = (i % 3 == 0) ? -1.0 : ((i % 3 == 1) ? 0.0 : 1.0);
    for (std::size_t j = 0; j < 10; ++j) {
      x(i, j) = rng.Normal(shift, 0.3);
    }
  }
  p3gm::stats::EmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p3gm::stats::FitGmm(x, opt));
  }
}
BENCHMARK(BM_GmmFit);

void BM_MatmulThreads(benchmark::State& state) {
  // Thread-count sweep of the dominant kernel: same 512x512 gemm at the
  // pool size given by the benchmark argument. Throughput should scale
  // with cores (flat on a single-core machine, where extra workers only
  // add scheduling overhead).
  const auto threads = static_cast<std::size_t>(state.range(0));
  p3gm::util::SetNumThreads(threads);
  Matrix a = RandomMatrix(512, 512, 37);
  Matrix b = RandomMatrix(512, 512, 41);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p3gm::linalg::Matmul(a, b));
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(state.iterations() * 512 * 512 * 512);
  p3gm::util::SetNumThreads(0);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PerExampleClipStep(benchmark::State& state) {
  // One DP-SGD gradient privatization for a 784->200 affine layer at
  // batch 100 (the dominant inner loop of Table VII training).
  p3gm::util::Rng rng(23);
  p3gm::nn::Linear lin("l", 784, 200, &rng);
  Matrix x = RandomMatrix(100, 784, 29);
  Matrix dy = RandomMatrix(100, 200, 31);
  p3gm::nn::DpSgdOptions opt;
  std::vector<p3gm::nn::Parameter*> params = lin.Parameters();
  for (auto _ : state) {
    lin.Forward(x, true);
    lin.Backward(dy, /*accumulate=*/false);
    p3gm::nn::DpSgdStep step(opt, &rng);
    benchmark::DoNotOptimize(step.CollectSquaredNorms({&lin}, 100));
    for (auto* p : params) p->ZeroGrad();
    step.ApplyClippedAccumulation({&lin});
    step.AddNoiseAndAverage(params, 100);
  }
}
BENCHMARK(BM_PerExampleClipStep);

// Threads-vs-throughput sweep on the statistical bench harness
// (warmup + reps, median + bootstrap CI per cell), written both to
// micro_threads.csv — explicit wall time and thread count per row so
// archived runs are comparable across machines (google-benchmark's own
// output lacks the pool size) — and to BENCH_micro_threads.json for
// tools/bench_compare. Deterministic kernels mean the result matrix is
// identical at every cell of the sweep; only the timing varies.
void RunThreadSweep() {
  const char* smoke_env = std::getenv("P3GM_BENCH_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] != '\0' &&
                     std::strcmp(smoke_env, "0") != 0;
  p3gm::obs::bench::BenchSuite suite(smoke ? "micro-threads-smoke"
                                           : "micro-threads");
  p3gm::util::Stopwatch total;
  p3gm::util::CsvWriter csv("micro_threads.csv");
  csv.WriteHeader({"kernel", "size", "threads", "wall_seconds", "gflops"});
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{128}
            : std::vector<std::size_t>{256, 512};
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  for (std::size_t n : sizes) {
    Matrix a = RandomMatrix(n, n, 43);
    Matrix b = RandomMatrix(n, n, 47);
    for (std::size_t threads : thread_counts) {
      p3gm::util::SetNumThreads(threads);
      const auto& r = suite.Run(
          "matmul." + std::to_string(n) + ".t" + std::to_string(threads),
          [&] { benchmark::DoNotOptimize(p3gm::linalg::Matmul(a, b)); });
      const double secs = r.stats.median;
      const double flops = 2.0 * static_cast<double>(n) * n * n;
      csv.WriteRow({"matmul", std::to_string(n), std::to_string(threads),
                    p3gm::util::FormatDouble(secs, 6),
                    p3gm::util::FormatDouble(flops / secs / 1e9, 4)});
      std::printf("matmul n=%zu threads=%zu: %.4fs (%.2f GFLOP/s)\n", n,
                  threads, secs, flops / secs / 1e9);
    }
  }
  p3gm::util::SetNumThreads(0);
  // Threads vary per cell (encoded in the bench names); runinfo records
  // the pool size the process returned to.
  suite.runinfo().threads = static_cast<int>(p3gm::util::NumThreads());
  suite.runinfo().wall_seconds = total.ElapsedSeconds();
  suite.WriteJson("BENCH_micro_threads.json");
  std::printf(
      "[thread sweep: micro_threads.csv + BENCH_micro_threads.json]\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunThreadSweep();
  return 0;
}
