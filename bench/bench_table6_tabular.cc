// Table VI reproduction: mean AUROC/AUPRC over the four classifiers on
// the four tabular datasets, for PrivBayes, DP-GM and P3GM at
// (1, 1e-5)-DP, plus the "original" column (training on real data).
// Paper claim: P3GM wins on Credit/ESR/ISOLET; PrivBayes is competitive
// only on Adult.

#include <functional>
#include <vector>

#include "baselines/dp_gm.h"
#include "baselines/privbayes.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace p3gm;        // NOLINT(build/namespaces)
using namespace p3gm::bench;  // NOLINT(build/namespaces)

namespace {

struct DatasetCase {
  std::string name;
  std::string slug;  // Stable lowercase key for BENCH section names.
  data::Dataset dataset;
  core::PgmOptions pgm_options;
};

struct Row {
  std::string dataset;
  double privbayes_roc, dpgm_roc, p3gm_roc, original_roc;
  double privbayes_prc, dpgm_prc, p3gm_prc, original_prc;
};

Row RunCase(const DatasetCase& c) {
  auto split = data::StratifiedSplit(c.dataset, 0.25, 11);
  P3GM_CHECK(split.ok());
  const std::size_t n = split->train.size();
  std::printf("== %s: train n=%zu d=%zu pos=%.2f%%\n", c.name.c_str(), n,
              c.dataset.dim(), 100.0 * split->train.PositiveRate());
  Row row;
  row.dataset = c.name;

  {
    Section section(c.slug + "/privbayes");
    baselines::PrivBayesOptions opt;
    opt.epsilon = kEpsilon;
    opt.bins = 8;
    opt.degree = 2;
    baselines::PrivBayesSynthesizer pb(opt);
    auto res = RunProtocol(&pb, *split);
    row.privbayes_roc = res.mean_auroc;
    row.privbayes_prc = res.mean_auprc;
    std::printf("   PrivBayes  AUROC=%.4f AUPRC=%.4f (%.1fs)\n",
                res.mean_auroc, res.mean_auprc, section.Stop());
  }
  {
    Section section(c.slug + "/dpgm");
    baselines::DpGmOptions opt;
    opt.num_clusters = 5;
    opt.vae.hidden = std::min<std::size_t>(c.pgm_options.hidden, 100);
    opt.vae.latent_dim = 10;
    opt.vae.epochs = c.pgm_options.epochs / 2 + 5;
    opt.vae.batch_size = 50;
    auto sigma =
        baselines::DpGmSynthesizer::CalibrateSigma(opt, n, kEpsilon, kDelta);
    P3GM_CHECK(sigma.ok());
    opt.vae.sgd_sigma = *sigma;
    baselines::DpGmSynthesizer dpgm(opt);
    auto res = RunProtocol(&dpgm, *split);
    row.dpgm_roc = res.mean_auroc;
    row.dpgm_prc = res.mean_auprc;
    std::printf("   DP-GM      AUROC=%.4f AUPRC=%.4f (eps=%.2f, %.1fs)\n",
                res.mean_auroc, res.mean_auprc,
                dpgm.ComputeEpsilon(kDelta).epsilon, section.Stop());
  }
  {
    Section section(c.slug + "/p3gm");
    core::PgmOptions opt = MakePrivate(c.pgm_options, n);
    core::PgmSynthesizer p3gm(opt);
    auto res = RunProtocol(&p3gm, *split);
    row.p3gm_roc = res.mean_auroc;
    row.p3gm_prc = res.mean_auprc;
    std::printf("   P3GM       AUROC=%.4f AUPRC=%.4f (eps=%.2f, %.1fs)\n",
                res.mean_auroc, res.mean_auprc,
                p3gm.ComputeEpsilon(kDelta).epsilon, section.Stop());
  }
  {
    Section section(c.slug + "/original");
    auto res = eval::EvaluateSyntheticData(split->train, split->test, true);
    P3GM_CHECK(res.ok());
    row.original_roc = res->mean_auroc;
    row.original_prc = res->mean_auprc;
    std::printf("   original   AUROC=%.4f AUPRC=%.4f (%.1fs)\n\n",
                res->mean_auroc, res->mean_auprc, section.Stop());
  }
  return row;
}

}  // namespace

int main() {
  PrintTitle(
      "Table VI: private models on four tabular datasets, (1,1e-5)-DP");
  BenchRun total("table6_tabular");

  std::vector<DatasetCase> cases;
  cases.push_back({"Kaggle Credit", "credit", BenchCredit(),
                   CreditPgmOptions()});
  cases.push_back({"UCI ESR", "esr", BenchEsr(), EsrPgmOptions()});
  cases.push_back({"Adult", "adult", BenchAdult(), AdultPgmOptions()});
  if (!SmokeMode()) {
    // ISOLET's 617 columns make PrivBayes structure learning the slowest
    // cell of the table; smoke keeps the three cheap datasets.
    cases.push_back({"UCI ISOLET", "isolet", BenchIsolet(),
                     IsoletPgmOptions()});
  }

  std::vector<Row> rows;
  for (const auto& c : cases) rows.push_back(RunCase(c));

  util::CsvWriter csv("table6_tabular.csv");
  csv.WriteHeader({"dataset", "metric", "privbayes", "dpgm", "p3gm",
                   "original"});
  std::printf("%-16s | %-39s | %-39s\n", "", "AUROC", "AUPRC");
  std::printf("%-16s %9s %9s %9s %9s %9s %9s %9s %9s\n", "dataset",
              "PrivBayes", "DP-GM", "P3GM", "original", "PrivBayes", "DP-GM",
              "P3GM", "original");
  for (const Row& r : rows) {
    std::printf("%-16s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f\n",
                r.dataset.c_str(), r.privbayes_roc, r.dpgm_roc, r.p3gm_roc,
                r.original_roc, r.privbayes_prc, r.dpgm_prc, r.p3gm_prc,
                r.original_prc);
    csv.WriteRow({r.dataset, "auroc", util::FormatDouble(r.privbayes_roc),
                  util::FormatDouble(r.dpgm_roc),
                  util::FormatDouble(r.p3gm_roc),
                  util::FormatDouble(r.original_roc)});
    csv.WriteRow({r.dataset, "auprc", util::FormatDouble(r.privbayes_prc),
                  util::FormatDouble(r.dpgm_prc),
                  util::FormatDouble(r.p3gm_prc),
                  util::FormatDouble(r.original_prc)});
  }
  std::printf(
      "\npaper shape check: P3GM best on Credit/ESR/ISOLET; PrivBayes "
      "competitive on Adult.\n");
  total.AppendRunInfo(&csv);
  std::printf("[table6 done in %.1fs; CSV: table6_tabular.csv]\n",
              total.ElapsedSeconds());
  return 0;
}
