// Image synthesis: the Fig.-1 scenario — a data holder shares a private
// generative model of handwritten-digit images instead of the images
// themselves. Trains P3GM (and a non-private VAE for reference) on
// MNIST-like glyphs, writes sample grids as PGM files, and prints an
// ASCII preview.
//
//   build/examples/image_synthesis

#include <cstdio>

#include "core/pgm.h"
#include "core/release.h"
#include "core/synthesizer.h"
#include "core/vae.h"
#include "data/images.h"
#include "util/stopwatch.h"

using namespace p3gm;  // NOLINT(build/namespaces)

namespace {

void SaveGrid(const std::string& name, core::Synthesizer* synth,
              const data::Dataset& train) {
  util::Stopwatch sw;
  if (auto st = synth->Fit(train); !st.ok()) {
    std::printf("%s fit failed: %s\n", name.c_str(),
                st.ToString().c_str());
    return;
  }
  util::Rng rng(9);
  auto gen = synth->Generate(36, &rng);
  if (!gen.ok()) {
    std::printf("%s generation failed\n", name.c_str());
    return;
  }
  const std::string path = "example_images_" + name + ".pgm";
  auto st = data::SaveImageGridPgm(gen->features, 6, path);
  std::printf("%-6s epsilon=%.2f  %s  (%.1fs)\n", name.c_str(),
              synth->ComputeEpsilon(1e-5).epsilon,
              st.ok() ? path.c_str() : st.ToString().c_str(),
              sw.ElapsedSeconds());
  std::printf("first sample (label %zu):\n%s\n", gen->labels[0],
              data::AsciiImage(gen->features.row_data(0)).c_str());
}

}  // namespace

int main() {
  // DP-SGD is data-hungry: image quality at epsilon = 1 improves
  // markedly with n (the paper trains on 63 000 images). 8 000 keeps
  // this example around a minute; raise it for better samples.
  std::printf("Training digit synthesizers on %zu-pixel glyph images...\n",
              data::kImagePixels);
  data::Dataset digits = data::MakeMnistLike(8000, 42);

  // Non-private VAE reference.
  {
    core::VaeOptions opt;
    opt.hidden = 100;
    opt.latent_dim = 10;
    opt.epochs = 10;
    opt.batch_size = 240;
    core::VaeSynthesizer vae(opt);
    SaveGrid("vae", &vae, digits);
  }

  // P3GM at (1, 1e-5)-DP, released as a self-contained package that a
  // third party can load and sample without any training code (the
  // paper's Fig. 1 sharing model).
  {
    core::PgmOptions opt;
    opt.hidden = 100;
    opt.latent_dim = 10;
    opt.mog_components = 5;
    opt.epochs = 10;
    opt.batch_size = 240;
    opt.differentially_private = true;
    auto sigma = core::Pgm::CalibrateSigma(opt, digits.size(), 1.0, 1e-5);
    if (!sigma.ok()) {
      std::printf("calibration failed: %s\n",
                  sigma.status().ToString().c_str());
      return 1;
    }
    opt.sgd_sigma = *sigma;
    core::PgmSynthesizer p3gm(opt);
    SaveGrid("p3gm", &p3gm, digits);

    // Package the decoder + prior, persist, reload, regenerate.
    auto pkg = core::ReleasePackage::FromPgm(&p3gm.model(),
                                             digits.num_classes,
                                             "digits-p3gm-eps1");
    if (pkg.ok() && pkg->Save("digits_p3gm.release").ok()) {
      auto loaded = core::ReleasePackage::Load("digits_p3gm.release");
      if (loaded.ok()) {
        util::Rng rng(21);
        auto regen = loaded->Generate(36, &rng);
        std::printf("release package round trip: %zu samples from "
                    "digits_p3gm.release (latent %zu, output %zu)\n",
                    regen.ok() ? regen->size() : 0, loaded->latent_dim(),
                    loaded->output_dim());
      }
    }
  }

  std::printf("open the .pgm grids with any image viewer.\n");
  return 0;
}
