// Privacy accounting walkthrough: how P3GM composes its three private
// components (DP-PCA, DP-EM, DP-SGD) under Renyi DP, how the total
// converts to (epsilon, delta), and how to budget a run. No training —
// this example exercises only the accountant API.
//
//   build/examples/privacy_accounting

#include <cstdio>

#include "dp/accountant.h"
#include "dp/rdp.h"

using namespace p3gm;  // NOLINT(build/namespaces)

int main() {
  // A concrete planned run: MNIST-scale P3GM per the paper's Table IV.
  const std::size_t n = 63000;
  const std::size_t batch = 240;
  const std::size_t epochs = 10;

  dp::P3gmPrivacyParams params;
  params.pca_epsilon = 0.1;   // DP-PCA (Wishart mechanism, pure DP).
  params.em_sigma = 100.0;    // DP-EM noise multiplier.
  params.em_iters = 20;       // Te.
  params.mog_components = 3;  // K.
  params.sgd_sampling_rate = static_cast<double>(batch) / n;
  params.sgd_steps = epochs * (n / batch);

  std::printf("planned run: n=%zu, batch=%zu (q=%.5f), %zu DP-SGD steps, "
              "%zu DP-EM iterations\n\n",
              n, batch, params.sgd_sampling_rate, params.sgd_steps,
              params.em_iters);

  // 1. Per-component RDP costs at a representative order.
  const double alpha = 32.0;
  std::printf("per-component RDP at alpha = %.0f:\n", alpha);
  std::printf("  DP-PCA  (eps_p = %.2f):      %.5f\n", params.pca_epsilon,
              dp::PureDpRdp(alpha, params.pca_epsilon));
  std::printf("  DP-EM   (%zu iters):          %.5f\n", params.em_iters,
              params.em_iters *
                  dp::DpEmRdp(alpha, params.em_sigma,
                              params.mog_components));
  params.sgd_sigma = 1.42;  // Table IV's MNIST sigma.
  std::printf("  DP-SGD  (%zu steps, s=%.2f): %.5f\n\n", params.sgd_steps,
              params.sgd_sigma,
              params.sgd_steps *
                  dp::SampledGaussianRdp(static_cast<std::size_t>(alpha),
                                         params.sgd_sampling_rate,
                                         params.sgd_sigma));

  // 2. Full composition at several delta values.
  for (double delta : {1e-3, 1e-5, 1e-7}) {
    const auto g = dp::ComputeP3gmEpsilonRdp(params, delta);
    std::printf("total: (%.4f, %g)-DP  [best Renyi order %g]\n", g.epsilon,
                delta, g.best_order);
  }

  // 3. The Fig. 6 comparison: RDP vs the zCDP + moments-accountant
  //    baseline composition.
  std::printf("\nsigma_s sweep (delta = 1e-5):\n%8s %12s %12s\n", "sigma",
              "RDP", "zCDP+MA");
  for (double sigma : {1.0, 1.42, 2.0, 4.0, 8.0}) {
    params.sgd_sigma = sigma;
    std::printf("%8.2f %12.4f %12.4f\n", sigma,
                dp::ComputeP3gmEpsilonRdp(params, 1e-5).epsilon,
                dp::ComputeP3gmEpsilonBaseline(params, 1e-5));
  }

  // 4. Inverse problem: what sigma_s achieves a target epsilon?
  std::printf("\ncalibration to target epsilon (delta = 1e-5):\n");
  for (double target : {0.5, 1.0, 2.0, 5.0}) {
    auto sigma = dp::CalibrateSgdSigma(params, target, 1e-5);
    if (sigma.ok()) {
      params.sgd_sigma = *sigma;
      std::printf("  eps <= %.1f  ->  sigma_s = %7.3f  (achieved %.4f)\n",
                  target, *sigma,
                  dp::ComputeP3gmEpsilonRdp(params, 1e-5).epsilon);
    } else {
      std::printf("  eps <= %.1f  ->  unreachable: %s\n", target,
                  sigma.status().ToString().c_str());
    }
  }
  return 0;
}
