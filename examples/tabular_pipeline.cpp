// Tabular pipeline: the outsourced-analytics scenario from the paper's
// introduction. A data holder with a highly imbalanced fraud dataset
// compares every synthesizer in this library — P3GM, PGM, VAE, DP-VAE,
// DP-GM, PrivBayes — at the same privacy level and picks a release.
//
//   build/examples/tabular_pipeline

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/dp_gm.h"
#include "baselines/privbayes.h"
#include "core/pgm.h"
#include "core/synthesizer.h"
#include "core/vae.h"
#include "data/synthetic.h"
#include "eval/protocol.h"
#include "util/stopwatch.h"

using namespace p3gm;  // NOLINT(build/namespaces)

namespace {

constexpr double kEps = 1.0;
constexpr double kDelta = 1e-5;

struct Entry {
  std::string name;
  double epsilon;
  double auroc;
  double auprc;
  double seconds;
};

Entry Evaluate(core::Synthesizer* synth, const data::Split& split) {
  util::Stopwatch sw;
  Entry e;
  e.name = synth->name();
  if (auto st = synth->Fit(split.train); !st.ok()) {
    std::printf("%s failed: %s\n", e.name.c_str(), st.ToString().c_str());
    e.epsilon = e.auroc = e.auprc = e.seconds = 0;
    return e;
  }
  util::Rng rng(3);
  auto gen = core::GenerateWithLabelRatio(synth, split.train.size(),
                                          split.train, &rng);
  auto res = eval::EvaluateSyntheticData(*gen, split.test, /*fast=*/true);
  e.epsilon = synth->ComputeEpsilon(kDelta).epsilon;
  e.auroc = res->mean_auroc;
  e.auprc = res->mean_auprc;
  e.seconds = sw.ElapsedSeconds();
  return e;
}

}  // namespace

int main() {
  data::Dataset fraud = data::MakeCreditLike(8000, 42, /*positive_rate=*/0.01);
  auto split = data::StratifiedSplit(fraud, 0.25, 7);
  if (!split.ok()) return 1;
  const std::size_t n = split->train.size();
  std::printf("fraud dataset: %zu train rows, %zu features, %.2f%% fraud\n\n",
              n, fraud.dim(), 100.0 * split->train.PositiveRate());

  std::vector<Entry> board;

  {  // Non-private references.
    core::VaeOptions opt;
    opt.hidden = 200;
    opt.latent_dim = 10;
    opt.epochs = 25;
    opt.batch_size = 200;
    core::VaeSynthesizer vae(opt);
    board.push_back(Evaluate(&vae, *split));
  }
  core::PgmOptions pgm_base;
  pgm_base.hidden = 200;
  pgm_base.use_pca = false;  // Credit is already low-dimensional.
  pgm_base.mog_components = 3;
  pgm_base.epochs = 40;
  pgm_base.batch_size = 100;
  {
    core::PgmSynthesizer pgm(pgm_base);
    board.push_back(Evaluate(&pgm, *split));
  }
  {  // P3GM at (1, 1e-5)-DP.
    core::PgmOptions opt = pgm_base;
    opt.differentially_private = true;
    auto sigma = core::Pgm::CalibrateSigma(opt, n, kEps, kDelta);
    if (sigma.ok()) {
      opt.sgd_sigma = *sigma;
      core::PgmSynthesizer p3gm(opt);
      board.push_back(Evaluate(&p3gm, *split));
    }
  }
  {  // DP-VAE.
    core::VaeOptions opt;
    opt.hidden = 200;
    opt.latent_dim = 10;
    opt.epochs = 25;
    opt.batch_size = 200;
    opt.differentially_private = true;
    dp::P3gmPrivacyParams pp;
    pp.pca_epsilon = 0.0;
    pp.em_iters = 0;
    pp.sgd_sampling_rate = static_cast<double>(opt.batch_size) / n;
    pp.sgd_steps = opt.epochs * (n / opt.batch_size);
    auto sigma = dp::CalibrateSgdSigma(pp, kEps, kDelta);
    if (sigma.ok()) {
      opt.sgd_sigma = *sigma;
      core::VaeSynthesizer dpvae(opt);
      board.push_back(Evaluate(&dpvae, *split));
    }
  }
  {  // DP-GM.
    baselines::DpGmOptions opt;
    opt.num_clusters = 5;
    opt.vae.hidden = 100;
    opt.vae.latent_dim = 10;
    opt.vae.epochs = 15;
    opt.vae.batch_size = 100;
    auto sigma =
        baselines::DpGmSynthesizer::CalibrateSigma(opt, n, kEps, kDelta);
    if (sigma.ok()) {
      opt.vae.sgd_sigma = *sigma;
      baselines::DpGmSynthesizer dpgm(opt);
      board.push_back(Evaluate(&dpgm, *split));
    }
  }
  {  // PrivBayes.
    baselines::PrivBayesOptions opt;
    opt.epsilon = kEps;
    opt.bins = 8;
    baselines::PrivBayesSynthesizer pb(opt);
    board.push_back(Evaluate(&pb, *split));
  }

  std::printf("%-12s %10s %10s %10s %8s\n", "model", "epsilon", "AUROC",
              "AUPRC", "time");
  for (const Entry& e : board) {
    std::printf("%-12s %10.3f %10.4f %10.4f %7.1fs\n", e.name.c_str(),
                e.epsilon, e.auroc, e.auprc, e.seconds);
  }
  std::printf(
      "\n(epsilon = 0 marks non-private references; all private models "
      "are calibrated to epsilon <= %.1f at delta = %g)\n",
      kEps, kDelta);
  return 0;
}
