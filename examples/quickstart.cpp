// Quickstart: train P3GM on a sensitive tabular dataset under
// (1, 1e-5)-differential privacy and release a synthetic copy.
//
//   build/examples/quickstart
//
// Walks through the full public API in ~60 lines: load data, calibrate
// the DP-SGD noise for a target epsilon, fit the two-phase model,
// generate labeled synthetic rows, and verify their downstream utility.

#include <cstdio>

#include "core/pgm.h"
#include "core/synthesizer.h"
#include "data/synthetic.h"
#include "eval/protocol.h"

using namespace p3gm;  // NOLINT(build/namespaces) — example brevity.

int main() {
  // 1. The sensitive dataset (here: a synthetic Adult-like stand-in with
  //    15 mixed features and a binary income label, scaled to [0, 1]).
  data::Dataset sensitive = data::MakeAdultLike(4000, /*seed=*/42);
  auto split = data::StratifiedSplit(sensitive, /*test_fraction=*/0.25,
                                     /*seed=*/7);
  if (!split.ok()) {
    std::printf("split failed: %s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("sensitive data: %zu rows, %zu features, %.1f%% positive\n",
              split->train.size(), split->train.dim(),
              100.0 * split->train.PositiveRate());

  // 2. Configure P3GM and solve for the DP-SGD noise multiplier that
  //    makes the whole pipeline (DP-PCA + DP-EM + DP-SGD, composed with
  //    Renyi DP) satisfy (1, 1e-5)-DP.
  core::PgmOptions options;
  options.hidden = 200;
  options.latent_dim = 10;
  options.mog_components = 3;
  options.epochs = 40;
  options.batch_size = 100;
  options.differentially_private = true;
  auto sigma = core::Pgm::CalibrateSigma(options, split->train.size(),
                                         /*target_epsilon=*/1.0,
                                         /*delta=*/1e-5);
  if (!sigma.ok()) {
    std::printf("calibration failed: %s\n",
                sigma.status().ToString().c_str());
    return 1;
  }
  options.sgd_sigma = *sigma;
  std::printf("calibrated DP-SGD noise multiplier: %.3f\n", *sigma);

  // 3. Fit. The synthesizer trains on [features | one-hot(label)] so
  //    generated rows carry labels.
  core::PgmSynthesizer synthesizer(options);
  if (auto st = synthesizer.Fit(split->train); !st.ok()) {
    std::printf("fit failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const auto guarantee = synthesizer.ComputeEpsilon(1e-5);
  std::printf("privacy spent: epsilon=%.4f at delta=%g (Renyi order %g)\n",
              guarantee.epsilon, guarantee.delta, guarantee.best_order);

  // 4. Release a synthetic dataset with the training label ratio. This
  //    is pure post-processing: no additional privacy cost.
  util::Rng rng(123);
  auto synthetic = core::GenerateWithLabelRatio(
      &synthesizer, split->train.size(), split->train, &rng);
  if (!synthetic.ok()) {
    std::printf("generation failed: %s\n",
                synthetic.status().ToString().c_str());
    return 1;
  }
  std::printf("released %zu synthetic rows (%.1f%% positive)\n",
              synthetic->size(), 100.0 * synthetic->PositiveRate());

  // 5. Sanity-check utility: train classifiers on the synthetic rows,
  //    evaluate on real held-out data (the paper's protocol).
  auto report = eval::EvaluateSyntheticData(*synthetic, split->test);
  if (!report.ok()) {
    std::printf("evaluation failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nutility of the synthetic release (real test data):\n%s",
              eval::FormatProtocolResult(*report).c_str());
  return 0;
}
