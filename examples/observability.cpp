// Observability tour: train a small private P3GM with the telemetry
// subsystem on and export every artifact it produces.
//
//   build/examples/observability
//
// Covers the three obs components:
//   * metrics registry  — counters/gauges/histograms from every layer
//                         (DP-SGD clip rate, thread-pool utilization,
//                         per-phase wall time), exported as JSON + CSV
//   * trace spans       — chrome://tracing timeline of the run
//                         (open observability_trace.json in
//                         chrome://tracing or https://ui.perfetto.dev)
//   * privacy ledger    — one entry per mechanism invocation with the
//                         cumulative (epsilon, delta) after each

#include <cstdio>

#include "core/pgm.h"
#include "data/synthetic.h"
#include "obs/ledger.h"
#include "obs/observability.h"
#include "obs/registry.h"
#include "obs/trace.h"

using namespace p3gm;  // NOLINT(build/namespaces) — example brevity.

int main() {
  constexpr double kDelta = 1e-5;

  // 1. Observability is off by default (training is telemetry-free and
  //    bit-identical to an uninstrumented build). One switch turns every
  //    instrument on; the ledger needs to know the reporting delta.
  obs::SetEnabled(true);
  obs::PrivacyLedger::Global().SetDelta(kDelta);

  // 2. A small private run — every mechanism invocation below lands in
  //    the ledger as it happens.
  data::Dataset sensitive = data::MakeAdultLike(2000, /*seed=*/42);
  core::PgmOptions options;
  options.hidden = 60;
  options.latent_dim = 8;
  options.mog_components = 3;
  options.epochs = 4;
  options.batch_size = 100;
  options.em_iters = 10;
  options.differentially_private = true;
  options.sgd_sigma = 1.5;

  core::Pgm model(options);
  if (util::Status st = model.Fit(sensitive.features); !st.ok()) {
    std::printf("fit failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. The metrics registry: a consistent snapshot of every instrument.
  const obs::Snapshot snapshot = obs::Registry::Global().TakeSnapshot();
  std::printf("metrics: %zu counters, %zu gauges, %zu histograms\n",
              snapshot.counters.size(), snapshot.gauges.size(),
              snapshot.histograms.size());
  for (const auto& g : snapshot.gauges) {
    if (g.name.rfind("pgm.phase.", 0) == 0) {
      std::printf("  %-24s %.3fs\n", g.name.c_str(), g.value);
    }
  }
  snapshot.WriteJson("observability_metrics.json");
  snapshot.WriteCsv("observability_metrics.csv");

  // 4. The trace: every span, per thread, on one timeline.
  std::printf("trace: %zu spans recorded\n",
              obs::TraceRecorder::Global().EventCount());
  obs::TraceRecorder::Global().WriteChromeJson("observability_trace.json");

  // 5. The privacy ledger: the composition trajectory. The final entry's
  //    cumulative epsilon equals the model's own accounting.
  const obs::PrivacyLedger& ledger = obs::PrivacyLedger::Global();
  std::printf("ledger: %zu mechanism invocations\n", ledger.size());
  const auto entries = ledger.Entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    // Print the first few and the last to keep the tour readable.
    if (i >= 3 && i + 1 < entries.size()) continue;
    const obs::LedgerEntry& e = entries[i];
    std::printf("  [%zu] %-16s phase=%-7s sigma=%-6.4g -> epsilon %.4f\n",
                i, e.mechanism.c_str(), e.phase.c_str(), e.sigma,
                e.cumulative_epsilon);
  }
  ledger.WriteJson("observability_ledger.json");
  ledger.WriteCsv("observability_ledger.csv");

  const double ledger_eps = ledger.CumulativeEpsilon();
  const double model_eps = model.ComputeEpsilon(kDelta).epsilon;
  std::printf("ledger epsilon %.9f vs model accounting %.9f (|diff| %.2e)\n",
              ledger_eps, model_eps, std::abs(ledger_eps - model_eps));

  std::printf(
      "artifacts: observability_metrics.{json,csv}, "
      "observability_trace.json, observability_ledger.{json,csv}\n");
  return 0;
}
